"""Lattice reduction (LLL) for MIMO detection.

Sphere decoding is a closest-lattice-point search (the paper cites
Agrell et al. [10]); its complexity and the quality of sub-optimal
detectors both hinge on how orthogonal the lattice basis (channel
matrix) is. The Lenstra–Lenstra–Lovász algorithm produces an equivalent
basis ``B_tilde = B T`` (``T`` unimodular integer) with near-orthogonal,
short vectors; detectors that slice in the reduced domain achieve full
receive diversity at linear-filter cost (see
:mod:`repro.detectors.lr`).

This is a real-valued LLL over arbitrary tall bases; the MIMO use passes
the real decomposition of the channel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_matrix


@dataclass(frozen=True)
class LLLResult:
    """Reduced basis plus the unimodular change of coordinates.

    ``reduced == basis @ transform`` exactly; ``transform`` is integer
    with determinant +-1, so both matrices generate the same lattice.
    """

    reduced: np.ndarray
    transform: np.ndarray

    @property
    def inverse_transform(self) -> np.ndarray:
        """Integer inverse of ``transform`` (exists by unimodularity)."""
        inv = np.linalg.inv(self.transform)
        rounded = np.rint(inv)
        if not np.allclose(inv, rounded, atol=1e-6):
            raise ArithmeticError("transform inverse is not integral")
        return rounded.astype(np.int64)


def orthogonality_defect(basis: np.ndarray) -> float:
    """prod ||b_i|| / sqrt(det(B^T B)) — 1.0 for orthogonal bases."""
    basis = check_matrix(basis, "basis")
    norms = np.linalg.norm(basis, axis=0)
    gram_det = np.linalg.det(basis.T @ basis)
    if gram_det <= 0:
        raise ValueError("basis must have full column rank")
    return float(np.prod(norms) / np.sqrt(gram_det))


def lll_reduce(basis: np.ndarray, delta: float = 0.75) -> LLLResult:
    """LLL-reduce the columns of a real tall matrix.

    Parameters
    ----------
    basis:
        ``(m, n)`` with ``m >= n`` and full column rank.
    delta:
        Lovász parameter in (1/4, 1]; 0.75 is the classic choice.

    Returns
    -------
    :class:`LLLResult` satisfying (i) size reduction ``|mu_ij| <= 1/2``
    and (ii) the Lovász condition for every consecutive pair.
    """
    basis = check_matrix(basis, "basis").astype(float)
    m, n = basis.shape
    if m < n:
        raise ValueError(f"basis must be tall, got shape {basis.shape}")
    if not 0.25 < delta <= 1.0:
        raise ValueError(f"delta must lie in (1/4, 1], got {delta}")
    b = basis.copy()
    t = np.eye(n, dtype=np.int64)

    def gram_schmidt() -> tuple[np.ndarray, np.ndarray]:
        """Orthogonalised vectors' squared norms and mu coefficients."""
        q = np.zeros_like(b)
        mu = np.zeros((n, n))
        norms = np.zeros(n)
        for i in range(n):
            q[:, i] = b[:, i]
            for j in range(i):
                mu[i, j] = (b[:, i] @ q[:, j]) / norms[j]
                q[:, i] -= mu[i, j] * q[:, j]
            norms[i] = q[:, i] @ q[:, i]
            if norms[i] <= 0:
                raise ValueError("basis must have full column rank")
        return norms, mu

    norms, mu = gram_schmidt()
    k = 1
    # Standard LLL loop; re-orthogonalising from scratch after updates is
    # O(n) slower than the textbook incremental update but robust, and
    # MIMO dimensions here are tiny (n <= ~40).
    guard = 0
    max_iter = 1000 * n * n
    while k < n:
        guard += 1
        if guard > max_iter:  # pragma: no cover - safety net
            raise RuntimeError("LLL failed to converge")
        # Size-reduce b_k against b_{k-1} .. b_0. Each subtraction
        # changes mu[k, j'] for j' < j, so the coefficients are
        # recomputed as we go (cheap at MIMO dimensions).
        for j in range(k - 1, -1, -1):
            r = round(mu[k, j])
            if r:
                b[:, k] -= r * b[:, j]
                t[:, k] -= r * t[:, j]
                norms, mu = gram_schmidt()
        # Lovász condition between k-1 and k.
        if norms[k] >= (delta - mu[k, k - 1] ** 2) * norms[k - 1]:
            k += 1
        else:
            b[:, [k - 1, k]] = b[:, [k, k - 1]]
            t[:, [k - 1, k]] = t[:, [k, k - 1]]
            norms, mu = gram_schmidt()
            k = max(k - 1, 1)
    return LLLResult(reduced=b, transform=t)


def is_size_reduced(basis: np.ndarray, tol: float = 1e-9) -> bool:
    """Check the size-reduction condition ``|mu_ij| <= 1/2`` holds."""
    basis = check_matrix(basis, "basis").astype(float)
    n = basis.shape[1]
    q = np.zeros_like(basis)
    norms = np.zeros(n)
    for i in range(n):
        q[:, i] = basis[:, i]
        for j in range(i):
            mu = (basis[:, i] @ q[:, j]) / norms[j]
            if abs(mu) > 0.5 + tol:
                return False
            q[:, i] -= mu * q[:, j]
        norms[i] = q[:, i] @ q[:, i]
    return True
