"""Lattice reduction (LLL) for MIMO detection.

Sphere decoding is a closest-lattice-point search (the paper cites
Agrell et al. [10]); its complexity and the quality of sub-optimal
detectors both hinge on how orthogonal the lattice basis (channel
matrix) is. The Lenstra–Lenstra–Lovász algorithm produces an equivalent
basis ``B_tilde = B T`` (``T`` unimodular integer) with near-orthogonal,
short vectors; detectors that slice in the reduced domain achieve full
receive diversity at linear-filter cost (see
:mod:`repro.detectors.lr`).

This is a real-valued LLL over arbitrary tall bases; the MIMO use passes
the real decomposition of the channel.

The module also hosts the :class:`LatticeRepresentation` axis: *which*
lattice the tree search runs over — the complex QAM lattice, the classic
stacked real decomposition, or the reordered (interleaved) real lattice
of Azzam & Ayanoglu — selected per detector at ``prepare`` time (see
:class:`repro.detectors.engine.EngineDetector`). Representations are
stateless strategy objects: they map the channel/receive vector into the
search domain, name the search alphabet, and fold tree decisions back to
complex-domain QAM indices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mimo.constellation import Constellation, pam_component
from repro.mimo.preprocessing import real_decomposition, real_layout_permutation
from repro.util.validation import check_matrix


@dataclass(frozen=True)
class LLLResult:
    """Reduced basis plus the unimodular change of coordinates.

    ``reduced == basis @ transform`` exactly; ``transform`` is integer
    with determinant +-1, so both matrices generate the same lattice.
    """

    reduced: np.ndarray
    transform: np.ndarray

    @property
    def inverse_transform(self) -> np.ndarray:
        """Integer inverse of ``transform`` (exists by unimodularity)."""
        inv = np.linalg.inv(self.transform)
        rounded = np.rint(inv)
        if not np.allclose(inv, rounded, atol=1e-6):
            raise ArithmeticError("transform inverse is not integral")
        return rounded.astype(np.int64)


def orthogonality_defect(basis: np.ndarray) -> float:
    """prod ||b_i|| / sqrt(det(B^T B)) — 1.0 for orthogonal bases."""
    basis = check_matrix(basis, "basis")
    norms = np.linalg.norm(basis, axis=0)
    gram_det = np.linalg.det(basis.T @ basis)
    if gram_det <= 0:
        raise ValueError("basis must have full column rank")
    return float(np.prod(norms) / np.sqrt(gram_det))


def lll_reduce(basis: np.ndarray, delta: float = 0.75) -> LLLResult:
    """LLL-reduce the columns of a real tall matrix.

    Parameters
    ----------
    basis:
        ``(m, n)`` with ``m >= n`` and full column rank.
    delta:
        Lovász parameter in (1/4, 1]; 0.75 is the classic choice.

    Returns
    -------
    :class:`LLLResult` satisfying (i) size reduction ``|mu_ij| <= 1/2``
    and (ii) the Lovász condition for every consecutive pair.
    """
    basis = check_matrix(basis, "basis").astype(float)
    m, n = basis.shape
    if m < n:
        raise ValueError(f"basis must be tall, got shape {basis.shape}")
    if not 0.25 < delta <= 1.0:
        raise ValueError(f"delta must lie in (1/4, 1], got {delta}")
    b = basis.copy()
    t = np.eye(n, dtype=np.int64)

    def gram_schmidt() -> tuple[np.ndarray, np.ndarray]:
        """Orthogonalised vectors' squared norms and mu coefficients."""
        q = np.zeros_like(b)
        mu = np.zeros((n, n))
        norms = np.zeros(n)
        for i in range(n):
            q[:, i] = b[:, i]
            for j in range(i):
                mu[i, j] = (b[:, i] @ q[:, j]) / norms[j]
                q[:, i] -= mu[i, j] * q[:, j]
            norms[i] = q[:, i] @ q[:, i]
            if norms[i] <= 0:
                raise ValueError("basis must have full column rank")
        return norms, mu

    norms, mu = gram_schmidt()
    k = 1
    # Standard LLL loop; re-orthogonalising from scratch after updates is
    # O(n) slower than the textbook incremental update but robust, and
    # MIMO dimensions here are tiny (n <= ~40).
    guard = 0
    max_iter = 1000 * n * n
    while k < n:
        guard += 1
        if guard > max_iter:  # pragma: no cover - safety net
            raise RuntimeError("LLL failed to converge")
        # Size-reduce b_k against b_{k-1} .. b_0. Each subtraction
        # changes mu[k, j'] for j' < j, so the coefficients are
        # recomputed as we go (cheap at MIMO dimensions).
        for j in range(k - 1, -1, -1):
            r = round(mu[k, j])
            if r:
                b[:, k] -= r * b[:, j]
                t[:, k] -= r * t[:, j]
                norms, mu = gram_schmidt()
        # Lovász condition between k-1 and k.
        if norms[k] >= (delta - mu[k, k - 1] ** 2) * norms[k - 1]:
            k += 1
        else:
            b[:, [k - 1, k]] = b[:, [k, k - 1]]
            t[:, [k - 1, k]] = t[:, [k, k - 1]]
            norms, mu = gram_schmidt()
            k = max(k - 1, 1)
    return LLLResult(reduced=b, transform=t)


def is_size_reduced(basis: np.ndarray, tol: float = 1e-9) -> bool:
    """Check the size-reduction condition ``|mu_ij| <= 1/2`` holds."""
    basis = check_matrix(basis, "basis").astype(float)
    n = basis.shape[1]
    q = np.zeros_like(basis)
    norms = np.zeros(n)
    for i in range(n):
        q[:, i] = basis[:, i]
        for j in range(i):
            mu = (basis[:, i] @ q[:, j]) / norms[j]
            if abs(mu) > 0.5 + tol:
                return False
            q[:, i] -= mu * q[:, j]
        norms[i] = q[:, i] @ q[:, i]
    return True


class LatticeRepresentation:
    """Strategy object defining the search lattice of a tree detector.

    The complex representation is the identity: the search runs over the
    QAM alphabet on ``H`` itself. The real representations map the
    ``N x M`` complex system to the equivalent ``2N x 2M`` real one and
    search the per-dimension PAM alphabet — same leaf count, twice the
    depth, ``sqrt(P)`` the branching — differing only in column order:

    ``real``
        Stacked ``[Re s; Im s]`` blocks (the textbook order).
    ``real-reordered``
        Interleaved ``[Re s_1, Im s_1, Re s_2, Im s_2, ...]`` (Azzam &
        Ayanoglu): both halves of one complex symbol sit on *adjacent*
        levels, so a paired enumerator decides I and Q together — the
        effective tree depth is back to ``M`` (see docs/algorithms.md).

    Attributes
    ----------
    name:
        Registry key (``"complex"``, ``"real"``, ``"real-reordered"``).
    depth_factor:
        Tree levels per transmit antenna (1 complex, 2 real).
    noise_var_scale:
        Factor applied to the complex noise variance in the search
        domain (each real dimension carries half the complex variance).
    """

    name = "complex"
    depth_factor = 1
    noise_var_scale = 1.0

    def search_constellation(self, constellation: Constellation) -> Constellation:
        """Alphabet enumerated per tree level."""
        return constellation

    def map_channel(self, channel: np.ndarray) -> np.ndarray:
        """Channel matrix the QR factorisation runs on."""
        return channel

    def map_received(self, received: np.ndarray) -> np.ndarray:
        """Receive vector in the search domain."""
        return received

    def scale_noise(self, noise_var: float) -> float:
        """Per-dimension noise variance in the search domain."""
        return float(noise_var)

    def fold_indices(
        self, level_indices: np.ndarray, n_tx: int, constellation: Constellation
    ) -> np.ndarray:
        """Map antenna-ordered tree decisions to complex QAM indices.

        ``level_indices`` is the decoded index vector *after* undoing the
        QR column permutation, i.e. in this representation's column
        order; the result is one QAM point index per transmit antenna.
        """
        return level_indices

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


class ComplexLattice(LatticeRepresentation):
    """Identity representation: search the complex QAM lattice."""


class RealLattice(LatticeRepresentation):
    """Stacked real decomposition (``[Re s; Im s]`` column blocks)."""

    name = "real"
    depth_factor = 2
    noise_var_scale = 0.5
    _layout = "stacked"

    def search_constellation(self, constellation: Constellation) -> Constellation:
        return pam_component(constellation)

    def map_channel(self, channel: np.ndarray) -> np.ndarray:
        h_real, _ = real_decomposition(
            channel,
            np.zeros(channel.shape[0], complex),
            layout=self._layout,
        )
        # The complex search machinery is reused wholesale, so the real
        # matrix travels as complex128 with zero imaginary parts.
        return h_real.astype(complex)

    def map_received(self, received: np.ndarray) -> np.ndarray:
        return np.concatenate([received.real, received.imag]).astype(complex)

    def scale_noise(self, noise_var: float) -> float:
        # The complex AWGN's real/imag parts each carry half the variance.
        return float(noise_var) / 2.0

    def fold_indices(
        self, level_indices: np.ndarray, n_tx: int, constellation: Constellation
    ) -> np.ndarray:
        side = int(round(np.sqrt(constellation.order)))
        # Undo the layout: stacked[k] = Re of antenna k, stacked[M+k] = Im.
        perm = real_layout_permutation(n_tx, self._layout)
        stacked = np.empty(2 * n_tx, dtype=np.int64)
        stacked[perm] = level_indices
        i_lvl = stacked[:n_tx]
        q_lvl = stacked[n_tx:]
        return (i_lvl * side + q_lvl).astype(np.int64)


class ReorderedRealLattice(RealLattice):
    """Interleaved real decomposition (Azzam & Ayanoglu reordering)."""

    name = "real-reordered"
    _layout = "interleaved"


#: Module-level singletons, keyed by representation name.
COMPLEX_LATTICE = ComplexLattice()
REAL_LATTICE = RealLattice()
REORDERED_REAL_LATTICE = ReorderedRealLattice()

LATTICES = {
    rep.name: rep
    for rep in (COMPLEX_LATTICE, REAL_LATTICE, REORDERED_REAL_LATTICE)
}


def resolve_lattice(lattice) -> LatticeRepresentation:
    """Coerce a representation name or instance; ``None`` -> complex."""
    if lattice is None:
        return COMPLEX_LATTICE
    if isinstance(lattice, LatticeRepresentation):
        return lattice
    try:
        return LATTICES[lattice]
    except (KeyError, TypeError):
        known = ", ".join(sorted(LATTICES))
        raise ValueError(
            f"unknown lattice representation {lattice!r} (known: {known})"
        ) from None
