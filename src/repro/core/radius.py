"""Initial sphere-radius policies (paper Alg. 1, "Radius r" input).

The sphere constraint ``||ybar - R s||^2 <= r^2`` prunes the search; the
radius is then tightened at run time whenever a better leaf is found.
Three initialisation policies are provided:

:class:`InfiniteRadius`
    No initial pruning. The search is guaranteed exact and never erases,
    but explores the most nodes. This is the configuration used for the
    exactness proofs in the test suite.

:class:`NoiseScaledRadius`
    ``r^2 = alpha * N * sigma^2`` — the classic statistical choice: the
    true transmit vector satisfies ``||ybar - R s||^2 = ||Q^H n||^2``
    whose mean is ``M * sigma^2`` (thin QR retains M of the N noise
    dimensions), so a small multiple captures the solution with high
    probability. May erase (no leaf inside the sphere); the decoder
    escalates the radius and retries.

:class:`BabaiRadius`
    Seeds the search with the Babai / SIC (successive interference
    cancellation) point: decision-feedback back-substitution through
    ``R``. Its metric is a valid upper bound on the ML metric, so the
    sphere is never empty, the returned answer is still exactly ML, and
    pruning is tight from the very first pop. This is the default for the
    performance experiments.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.core.metric import L2, PartialDistanceMetric, resolve_metric
from repro.mimo.constellation import Constellation


def babai_point(
    r: np.ndarray,
    ybar: np.ndarray,
    constellation: Constellation,
    *,
    metric: PartialDistanceMetric | str | None = None,
) -> tuple[np.ndarray, float]:
    """Babai (SIC) solution and its reduced-domain metric.

    Back-substitution from level ``M-1`` down to ``0``, slicing each
    estimate to the nearest constellation point. The decision sequence is
    metric-independent (each level slices to the nearest point), but the
    accumulated metric follows the requested partial-distance ``metric``
    so the bound is valid for the traversal consuming it (a summed ℓ₂
    value would be a wrong — too loose *and* differently scaled — ℓ∞
    incumbent, and vice versa).

    Returns
    -------
    ``(indices_by_level, metric)`` where ``indices_by_level[k]`` is the
    point index at level ``k`` and ``metric`` is the reduced-domain
    metric of the Babai leaf (``||ybar - R s||^2`` under ℓ₂).
    """
    metric_obj = resolve_metric(metric)
    n_tx = r.shape[0]
    indices = np.empty(n_tx, dtype=np.int64)
    symbols = np.empty(n_tx, dtype=np.complex128)
    metric_val = 0.0
    accumulate = metric_obj.scalar_accumulate
    for k in range(n_tx - 1, -1, -1):
        interference = r[k, k + 1 :] @ symbols[k + 1 :]
        estimate = (ybar[k] - interference) / r[k, k]
        idx = int(constellation.nearest_indices(np.asarray([estimate]))[0])
        indices[k] = idx
        symbols[k] = constellation.points[idx]
        err = ybar[k] - interference - r[k, k] * symbols[k]
        metric_val = accumulate(metric_val, err)
    return indices, metric_val


@dataclass(frozen=True)
class RadiusInit:
    """Outcome of a radius policy.

    Attributes
    ----------
    radius_sq:
        Initial squared radius ``r^2``.
    incumbent_indices:
        Optional initial solution (ascending-level point indices) whose
        metric equals ``radius_sq``; ``None`` when the policy provides a
        bound without a candidate.
    """

    radius_sq: float
    incumbent_indices: np.ndarray | None = None


class RadiusPolicy(abc.ABC):
    """Strategy object computing the initial sphere radius."""

    #: Factor applied to ``r^2`` when the sphere turns out empty.
    escalation_factor: float = 4.0

    @abc.abstractmethod
    def initial(
        self,
        r: np.ndarray,
        ybar: np.ndarray,
        constellation: Constellation,
        noise_var: float,
        *,
        metric: PartialDistanceMetric | None = None,
    ) -> RadiusInit:
        """Initial radius (and optional incumbent) for one detection."""

    def can_escalate(self) -> bool:
        """Whether an empty sphere should be retried with a larger radius."""
        return True


class InfiniteRadius(RadiusPolicy):
    """No initial pruning — pure exact search."""

    def initial(
        self,
        r: np.ndarray,
        ybar: np.ndarray,
        constellation: Constellation,
        noise_var: float,
        *,
        metric: PartialDistanceMetric | None = None,
    ) -> RadiusInit:
        return RadiusInit(radius_sq=np.inf)

    def can_escalate(self) -> bool:
        return False  # an infinite sphere can never be empty


@dataclass
class NoiseScaledRadius(RadiusPolicy):
    """``r^2 = alpha * n_tx * sigma^2`` (statistical initial radius)."""

    alpha: float = 2.0
    escalation_factor: float = 4.0

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ValueError(f"alpha must be positive, got {self.alpha}")
        if self.escalation_factor <= 1:
            raise ValueError(
                f"escalation_factor must exceed 1, got {self.escalation_factor}"
            )

    def initial(
        self,
        r: np.ndarray,
        ybar: np.ndarray,
        constellation: Constellation,
        noise_var: float,
        *,
        metric: PartialDistanceMetric | None = None,
    ) -> RadiusInit:
        n_tx = r.shape[0]
        if noise_var <= 0:
            # Noiseless operation: fall back to the Babai bound, which is
            # always valid; a zero radius would erase every time.
            indices, bound = babai_point(r, ybar, constellation, metric=metric)
            return RadiusInit(radius_sq=bound, incumbent_indices=indices)
        if metric is not None and metric is not L2 and metric.name != L2.name:
            # A statistical chi-square radius is an l2-metric quantity;
            # for other metrics the Babai bound is the valid analogue.
            indices, bound = babai_point(r, ybar, constellation, metric=metric)
            return RadiusInit(radius_sq=bound, incumbent_indices=indices)
        return RadiusInit(radius_sq=self.alpha * n_tx * noise_var)


@dataclass
class FixedRadius(RadiusPolicy):
    """A user-preset squared radius, constant across detections.

    This is literally Algorithm 1's ``Radius r`` input. The GPU GEMM-BFS
    implementation of [1] operates this way: the radius is provisioned
    for the *worst-case* SNR the deployment must survive, so at high SNR
    the sphere is far larger than necessary and the breadth-first
    frontier stays enormous — the effect behind the paper's Fig. 11.
    """

    radius_sq: float = 1.0
    escalation_factor: float = 4.0

    def __post_init__(self) -> None:
        if self.radius_sq <= 0:
            raise ValueError(f"radius_sq must be positive, got {self.radius_sq}")
        if self.escalation_factor <= 1:
            raise ValueError(
                f"escalation_factor must exceed 1, got {self.escalation_factor}"
            )

    def initial(
        self,
        r: np.ndarray,
        ybar: np.ndarray,
        constellation: Constellation,
        noise_var: float,
        *,
        metric: PartialDistanceMetric | None = None,
    ) -> RadiusInit:
        return RadiusInit(radius_sq=self.radius_sq)


class BabaiRadius(RadiusPolicy):
    """Seed with the SIC solution: never erases, stays exact, prunes hard."""

    def initial(
        self,
        r: np.ndarray,
        ybar: np.ndarray,
        constellation: Constellation,
        noise_var: float,
        *,
        metric: PartialDistanceMetric | None = None,
    ) -> RadiusInit:
        indices, bound = babai_point(r, ybar, constellation, metric=metric)
        return RadiusInit(radius_sq=bound, incumbent_indices=indices)

    def can_escalate(self) -> bool:
        return False  # the Babai sphere always contains its own point
