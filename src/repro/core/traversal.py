"""Unified tree-traversal engine: search policy x evaluation backend.

The paper's central claim is that one sphere-decoding algorithm can be
re-targeted across execution substrates (CPU BLAS-3, GPU, FPGA dataflow)
because *what to expand next* is separable from *how partial distances
are evaluated*. This module is that separation made concrete:

``TraversalPolicy``
    What to expand next. Each policy is a search **generator** over the
    :class:`~repro.core.lockstep.ExpandRequest` protocol: it yields
    same-level node pools and receives the ``(B, P)`` child partial
    distances, never touching an evaluator directly.

    * :class:`BestFirstPolicy` — global priority queue on PD with
      same-level pooling (the paper's Best-FS, Alg. 1).
    * :class:`DfsPolicy` — LIFO with PD-sorted child insertion (the
      sorted-DFS of Fig. 3; pool size 1 recovers Geosphere's schedule).
    * :class:`BfsPolicy` — level-synchronous frontier sweep (the
      GPU baseline of Arfaoui et al., one GEMM per level).
    * :class:`KBestPolicy` — breadth-first with K survivors per level
      (fixed-throughput hardware detector; not exact).
    * :class:`FsdPolicy` — fixed-complexity schedule: full enumeration
      on ``rho`` levels, single-best-child SIC below (not exact).

``ScalarGemvBackend`` / ``FusedGemmBackend``
    How child PDs are computed. The scalar backend drives one frame's
    generator serially against a :class:`~repro.core.gemm.GemmEvaluator`;
    the fused backend runs many frames' generators in lockstep against a
    :class:`~repro.core.gemm.BatchedGemmEvaluator`, stacking same-level
    pools across frames into single BLAS-3 calls. Both produce
    bit-identical child PDs (shared ``_stacked_gemv`` kernel), so every
    policy gets cross-frame batch decoding for free.

``TraversalEngine``
    Binds a constellation, a policy and a radius policy. The detector
    classes in :mod:`repro.detectors` are thin configurations of this
    engine; all of them emit the uniform
    :class:`~repro.core.stats.BatchEvent` trace the FPGA pipeline
    simulator replays.

Frontier storage is the structure-of-arrays
:class:`~repro.core.nodepool.NodePool`: nodes are rows of preallocated
PD/seq/level vectors and one ``(capacity, M)`` path matrix, child
admission is a single masked bulk append per expansion, and a pool's
``(B, d)`` GEMM operand is a row block of the path matrix instead of a
per-node ``fromiter`` rebuild. The best-first heap and the DFS stack
hold scalar ``(pd, seq/row)`` entries ordered exactly like the legacy
per-node tuples, so every decode remains bit-identical to the object
model (``tests/test_nodepool.py`` checks against recorded outputs).

Exactness of the best-first / DFS policies is property-tested against
brute force in ``tests/test_sphere_decoder_exactness.py``; equivalence
of the scalar and fused backends in ``tests/test_parallel_mc.py``.
"""

from __future__ import annotations

import abc
import heapq

import numpy as np

from repro.core.enumeration import CHILD_ORDERS, child_order
from repro.core.gemm import (
    FLOPS_PER_CMAC,
    BatchedGemmEvaluator,
    GemmEvaluator,
)
from repro.core.lockstep import ExpandRequest, drive_lockstep, drive_serial
from repro.core.metric import resolve_metric
from repro.core.nodepool import NodePool, extend_paths
from repro.core.radius import babai_point
from repro.core.stats import BatchEvent, DecodeStats
from repro.obs.log import get_logger
from repro.obs.tracer import NULL_TRACER
from repro.util.validation import check_in, check_positive_int

_log = get_logger(__name__)


class TraversalPolicy(abc.ABC):
    """What to expand next — a search schedule over the SD tree.

    A policy is stateless across decodes: :meth:`solve_gen` returns a
    fresh generator per frame, so one policy instance can drive many
    interleaved frames (the fused backend relies on this).
    """

    @abc.abstractmethod
    def solve_gen(self, engine: "TraversalEngine", r, ybar, noise_var, stats, tracer):
        """Search generator for one frame's full solve.

        Yields :class:`~repro.core.lockstep.ExpandRequest`s and returns
        ``(indices_by_level, reduced_metric)``; the backend chooses the
        evaluator (serial or cross-frame fused). ``tracer`` scopes any
        spans the policy opens — pass ``NULL_TRACER`` when several
        generators run interleaved (lockstep batching), where spans
        opened across yields of different frames would corrupt the
        nesting stack.
        """


class LevelAccumulator:
    """Per-level traversal totals, kept hot-path-cheap.

    Three flat integer lists indexed by tree level: nodes expanded,
    expansion (GEMM batch) count, and nodes pruned. Plain list-index
    increments rather than metric instruments or a dict of rows because
    the expansion sites run tens of thousands of times per frame; the
    detector layer folds the totals into labelled counters once per
    solve. Per-level *generated* is not tracked — it is exactly
    ``nodes * constellation.order``.

    :meth:`ensure` sizes the lists before a search (policies call it
    once per solve with ``n_tx``); sizing never shrinks, so one
    accumulator can span a whole decode batch.
    """

    __slots__ = ("nodes", "exps", "pruned")

    def __init__(self) -> None:
        self.nodes: list[int] = []
        self.exps: list[int] = []
        self.pruned: list[int] = []

    def ensure(self, n_levels: int) -> None:
        grow = n_levels - len(self.nodes)
        if grow > 0:
            self.nodes.extend([0] * grow)
            self.exps.extend([0] * grow)
            self.pruned.extend([0] * grow)


def _build_expand_hook(acc, tracer):
    """Fuse per-expansion telemetry into one flat prebound closure.

    ``acc`` is the engine's optional :class:`LevelAccumulator` (pass
    ``None`` when the policy reconstructs per-level totals vectorized at
    the end of a search instead — see :attr:`DfsPolicy.vectorized_acc`);
    ``tracer`` contributes ``sd.batch`` marks when enabled (via
    :meth:`~repro.obs.Tracer.mark_bindings`). DFS expands single-node
    pools, so this closure runs tens of thousands of times per frame —
    everything is prebound, and single-node marks are sampled at the
    tracer's ``mark_stride`` (pooled marks always record; exact counts
    live in the metrics registry and ``DecodeStats``, marks are
    timeline samples). Returns ``None`` when there is nothing to
    record. Safe across :meth:`LevelAccumulator.ensure` growth because
    ``ensure`` extends the lists in place.
    """
    bindings = tracer.mark_bindings()
    if bindings is None:
        if acc is None:
            return None
        nodes = acc.nodes
        exps = acc.exps

        def hook(level: int, b: int) -> None:
            nodes[level] += b
            exps[level] += 1

        return hook
    append, now, epoch, tid = bindings
    stride = tracer.mark_stride
    # Start one short of the stride so the first single-node mark of
    # every solve records (a frame's trace is never entirely bare).
    skip = stride - 1
    if acc is None:

        def hook(level: int, b: int) -> None:
            nonlocal skip
            if b == 1:
                skip += 1
                if skip < stride:
                    return
                skip = 0
            append(("sd.batch", now() - epoch, tid, level, b))

        return hook
    nodes = acc.nodes
    exps = acc.exps

    def hook(level: int, b: int) -> None:
        nonlocal skip
        nodes[level] += b
        exps[level] += 1
        if b == 1:
            skip += 1
            if skip < stride:
                return
            skip = 0
        append(("sd.batch", now() - epoch, tid, level, b))

    return hook


class _PooledTreePolicy(TraversalPolicy):
    """Shared solve shape of the leaf-first (best-FS / DFS) policies.

    Owns the radius schedule the paper's decoder uses: initial radius
    from the engine's radius policy, geometric escalation while the
    sphere is empty — abandoned once the node cap truncates a search,
    since a larger radius can only expand the workload — and a Babai
    fallback when every escalation came back empty.
    """

    #: Strategy label used in ``sd.solve`` span args and detector attrs.
    strategy: str

    #: When True the policy's ``_search`` rebuilds the engine's
    #: per-level accumulator rows itself (one vectorized pass at search
    #: end) and the expand hook carries marks only. Worth it exactly
    #: when expansions are single-node and extremely frequent (DFS).
    vectorized_acc = False

    def __init__(self, *, max_nodes: int | None = None) -> None:
        self.max_nodes = (
            None if max_nodes is None else check_positive_int(max_nodes, "max_nodes")
        )

    def solve_gen(self, engine, r, ybar, noise_var, stats, tracer):
        n_tx = int(r.shape[1])
        acc = engine.level_acc
        if acc is not None:
            acc.ensure(n_tx)
        engine.expand_hook = _build_expand_hook(
            None if self.vectorized_acc else acc, tracer
        )
        with tracer.span("sd.solve", strategy=self.strategy, n_tx=n_tx):
            init = engine.radius_policy.initial(
                r, ybar, engine.constellation, float(noise_var),
                metric=engine.metric,
            )
            bound = float(init.radius_sq)
            incumbent = init.incumbent_indices
            stats.radius_trace.append(bound)
            while True:
                with tracer.span("sd.search", bound=bound):
                    incumbent, bound = yield from self._search(
                        engine, n_tx, bound, incumbent, stats, tracer
                    )
                if incumbent is not None or not engine.radius_policy.can_escalate():
                    break
                if stats.truncated:
                    # The search hit the node cap before finding any leaf —
                    # a larger radius can only make that worse; give up and
                    # fall back to the Babai point below.
                    break
                bound *= engine.radius_policy.escalation_factor
                stats.radius_trace.append(bound)
            if incumbent is None:
                incumbent, bound = babai_point(
                    r, ybar, engine.constellation, metric=engine.metric
                )
                stats.truncated = max(stats.truncated, 1)
                _log.debug(
                    "sphere empty after escalation; falling back to Babai "
                    "point (metric %.4g)",
                    bound,
                )
        return np.asarray(incumbent), float(bound)

    @abc.abstractmethod
    def _search(self, engine, n_tx, bound, incumbent, stats, tracer):
        """One full tree exploration under the given initial bound.

        Generator (driven via ``yield from``); returns the best complete
        solution found (ascending-level indices) and its metric — or
        ``(incumbent, bound)`` unchanged when the sphere is empty.
        """

    @staticmethod
    def _account_expansion(engine, level, b, depth, order, stats):
        """Book one pool expansion (``b`` nodes at ``level``) in ``stats``.

        Called right after the ``yield``-ed :class:`ExpandRequest` comes
        back (the request's operands are slices of the
        :class:`NodePool` path/PD arrays — no per-node rebuilds).
        Counts work with the exact FLOP formulas of
        :class:`GemmEvaluator`, so per-frame counters match the serial
        evaluator's no matter which backend ran the GEMM. A plain
        function, not a sub-generator: delegating through ``yield from``
        here would allocate a generator per expansion, which is
        measurable at single-node pools.
        """
        stats.nodes_expanded += b
        stats.nodes_generated += b * order
        stats.gemm_calls += 1
        if depth:
            stats.gemm_flops += FLOPS_PER_CMAC * b * depth
        stats.gemm_flops += engine.metric.flops_per_norm * b * order
        if engine.record_trace:
            stats.batches.append(BatchEvent(level=level, pool_size=b))
        hook = engine.expand_hook
        if hook is not None:
            hook(level, b)

    @staticmethod
    def _accept_leaves(pool, rows, child_pds, bound, incumbent, stats, acc=None):
        """Fold a batch of leaf evaluations into the incumbent/bound.

        ``rows`` indexes the level-0 parents in the :class:`NodePool`;
        ``acc`` is the engine's optional per-level accumulator (prunes
        here are level-0 prunes).
        """
        in_sphere = child_pds < bound
        n_in = int(np.count_nonzero(in_sphere))
        stats.leaves_reached += n_in
        stats.nodes_pruned += in_sphere.size - n_in
        if acc is not None and in_sphere.size != n_in:
            acc.pruned[0] += in_sphere.size - n_in
        flat = int(np.argmin(child_pds))
        n, c = divmod(flat, child_pds.shape[1])
        if child_pds[n, c] < bound:
            bound = float(child_pds[n, c])
            incumbent = pool.leaf_indices(int(rows[n]), c)
            stats.radius_updates += 1
            stats.radius_trace.append(bound)
        return incumbent, bound


class BestFirstPolicy(_PooledTreePolicy):
    """Global priority queue on PD with same-level pooling (Alg. 1).

    Parameters
    ----------
    pool_size:
        Up to this many same-level frontier nodes are popped together
        and evaluated in one GEMM batch. 1 recovers pure best-first;
        larger pools trade a little search discipline for bigger (more
        FPGA/GPU-friendly) GEMMs. Never affects exactness — only nodes
        already inside the sphere are pooled.
    max_nodes:
        Optional safety cap on expanded nodes; when hit, the best
        incumbent so far is returned and ``stats.truncated`` is set.
    """

    strategy = "best-first"

    def __init__(self, *, pool_size: int = 8, max_nodes: int | None = None) -> None:
        super().__init__(max_nodes=max_nodes)
        self.pool_size = check_positive_int(pool_size, "pool_size")

    def _search(self, engine, n_tx, bound, incumbent, stats, tracer):
        pool = NodePool(n_tx)
        root = pool.append_root()
        # Scalar heap entries (pd, pool row): the pool numbers rows in
        # admission order (``seq[i] == i``), so the row doubles as the
        # legacy SearchNode sequence tie-breaker and ``(pd, row)``
        # sorts exactly like the old ``(pd, seq)`` — pop order, and
        # therefore every decode, is bit-identical.
        heap: list[tuple[float, int]] = [(0.0, root)]
        levels = pool.level
        heappop, heappush = heapq.heappop, heapq.heappush
        pool_size = self.pool_size
        p = engine.constellation.order
        acc = engine.level_acc
        while heap:
            if heap[0][0] >= bound:
                break  # heap is PD-ordered: nothing left can improve
            first = heappop(heap)
            level = int(levels[first[1]])
            rows = [first[1]]
            while (
                len(rows) < pool_size
                and heap
                and levels[heap[0][1]] == level
                and heap[0][0] < bound
            ):
                rows.append(heappop(heap)[1])
            rows_arr = np.asarray(rows, dtype=np.int64)
            depth = n_tx - 1 - level
            child_pds = yield ExpandRequest(
                level,
                pool.path_block(rows_arr, depth),
                pool.pd_block(rows_arr),
            )
            self._account_expansion(engine, level, len(rows), depth, p, stats)
            if level == 0:
                incumbent, bound = self._accept_leaves(
                    pool, rows_arr, child_pds, bound, incumbent, stats, acc
                )
            else:
                mask = child_pds < bound
                # Row-major nonzero order == the legacy per-node /
                # per-child push order, so bulk admission assigns the
                # same sequence numbers the scalar loop did.
                ii, cc = mask.nonzero()
                stats.nodes_pruned += mask.size - ii.size
                if acc is not None and mask.size != ii.size:
                    acc.pruned[level] += mask.size - ii.size
                if ii.size:
                    survivors = child_pds[ii, cc]
                    new_rows = pool.append_children(
                        rows_arr[ii], cc, survivors, level - 1
                    )
                    levels = pool.level  # growth may have replaced it
                    for entry in zip(survivors.tolist(), new_rows.tolist()):
                        heappush(heap, entry)
                stats.max_list_size = max(stats.max_list_size, len(heap))
            if self.max_nodes is not None and stats.nodes_expanded >= self.max_nodes:
                stats.truncated += 1
                break
        return incumbent, bound


class DfsPolicy(_PooledTreePolicy):
    """Depth-first with per-level PD-sorted child insertion (Fig. 3).

    Parameters
    ----------
    child_ordering:
        ``"sorted"`` (Best-FS/Geosphere behaviour) or ``"natural"``;
        fixes the stack push order.
    max_nodes:
        Optional safety cap on expanded nodes.
    """

    strategy = "dfs"
    vectorized_acc = True

    def __init__(
        self, *, child_ordering: str = "sorted", max_nodes: int | None = None
    ) -> None:
        super().__init__(max_nodes=max_nodes)
        self.child_ordering = check_in(
            child_ordering, "child_ordering", CHILD_ORDERS
        )

    def _search(self, engine, n_tx, bound, incumbent, stats, tracer):
        pool = NodePool(n_tx)
        root = pool.append_root()
        # LIFO entries (pd, pool row): the pop-time prune needs only the
        # PD scalar; everything else lives in the pool's arrays.
        stack: list[tuple[float, int]] = [(0.0, root)]
        p = engine.constellation.order
        acc = engine.level_acc
        # Per-level accounting costs more than the search itself when
        # done per node (pops outnumber expansions ~3:1): stash only the
        # pop-pruned rows and rebuild every per-level row from the pool
        # in one vectorized pass at the end (see _fold_levels).
        pruned_rows: list[int] | None = [] if acc is not None else None
        leaves_before = stats.leaves_reached
        while stack:
            node_pd, row = stack.pop()
            if node_pd >= bound:
                # Generated inside an older, looser sphere; the radius has
                # shrunk since — prune on pop.
                stats.nodes_pruned += 1
                if pruned_rows is not None:
                    pruned_rows.append(row)
                continue
            level = int(pool.level[row])
            rows_arr = np.asarray([row], dtype=np.int64)
            depth = n_tx - 1 - level
            child_pds = yield ExpandRequest(
                level,
                pool.path_block(rows_arr, depth),
                pool.pd_block(rows_arr),
            )
            self._account_expansion(engine, level, 1, depth, p, stats)
            if level == 0:
                incumbent, bound = self._accept_leaves(
                    pool, rows_arr, child_pds, bound, incumbent, stats
                )
            else:
                pds = child_pds[0]
                order = child_order(pds, self.child_ordering)
                mask = pds < bound
                # Push worst-first so the best child is on top of the LIFO
                # (the sorted insertion of Fig. 3): filter the reversed
                # enumeration order by the admission mask in one step.
                push = order[::-1]
                push = push[mask[push]]
                stats.nodes_pruned += mask.size - push.size
                if push.size:
                    survivors = pds[push]
                    new_rows = pool.append_children(
                        row, push, survivors, level - 1
                    )
                    stack.extend(zip(survivors.tolist(), new_rows.tolist()))
                stats.max_list_size = max(stats.max_list_size, len(stack))
            if self.max_nodes is not None and stats.nodes_expanded >= self.max_nodes:
                stats.truncated += 1
                break
        if acc is not None:
            self._fold_levels(
                acc, pool, stack, pruned_rows, p, n_tx,
                stats.leaves_reached - leaves_before,
            )
        return incumbent, bound

    @staticmethod
    def _fold_levels(acc, pool, stack, pruned_rows, order, n_tx, leaves):
        """Rebuild this search's per-level accumulator rows from the pool.

        Every admitted row is exactly one of: pop-pruned
        (``pruned_rows``), still on ``stack`` (node-cap truncation), or
        expanded — so per-level expansion counts are three ``bincount``
        calls, not a list increment per node. Derived rows follow:
        expansions equal nodes (single-node pools), children admitted at
        ``level - 1`` all come from expansions at ``level`` (the root is
        at ``n_tx - 1``, never a child), and level-0 expansions send
        their ``order`` children to leaf acceptance instead of the pool,
        ``leaves`` of which survived. Totals match the per-expansion
        accounting this replaces exactly.
        """
        lv = pool.level[: pool.size]
        total = np.bincount(lv, minlength=n_tx)
        unexpanded = np.zeros(n_tx, dtype=np.int64)
        if pruned_rows:
            pop_pruned = np.bincount(
                lv[np.asarray(pruned_rows, dtype=np.int64)], minlength=n_tx
            )
            unexpanded += pop_pruned
            pops = pop_pruned.tolist()
        else:
            pops = [0] * n_tx
        if stack:
            rows = np.fromiter(
                (row for _pd, row in stack), dtype=np.int64, count=len(stack)
            )
            unexpanded += np.bincount(lv[rows], minlength=n_tx)
        expanded = (total - unexpanded).tolist()
        admitted = total.tolist()
        nodes, exps, pruned = acc.nodes, acc.exps, acc.pruned
        for level in range(n_tx):
            e = expanded[level]
            if e:
                nodes[level] += e
                exps[level] += e
                survived = leaves if level == 0 else admitted[level - 1]
                n_pruned = e * order - survived + pops[level]
            else:
                # Pop-prunes at a level can outlive its last expansion
                # (the bound tightened after its nodes were admitted).
                n_pruned = pops[level]
            if n_pruned:
                pruned[level] += n_pruned


class BfsPolicy(TraversalPolicy):
    """Level-synchronous frontier sweep (the [1]/GPU strategy).

    All of its pruning comes from the initial radius; if a level ends
    with an empty frontier the radius escalates and the sweep restarts.
    Unlike the leaf-first policies, escalation continues even after a
    frontier truncation (the truncated sweep may simply have dropped the
    sphere's occupants).

    Parameters
    ----------
    max_frontier:
        Optional cap on the surviving frontier per level (K-best style
        truncation). ``None`` keeps every in-sphere node, as in [1] —
        exact *within the sphere* but memory-hungry for 16-QAM.
    """

    def __init__(self, *, max_frontier: int | None = None) -> None:
        self.max_frontier = (
            None
            if max_frontier is None
            else check_positive_int(max_frontier, "max_frontier")
        )

    def _sweep(self, engine, n_tx, radius_sq, stats, tracer):
        """One full root-to-leaves BFS sweep under a fixed radius.

        Yields one :class:`ExpandRequest` per level and receives the
        child PDs. Returns ``(best_indices_by_level, best_metric)`` or
        ``(None, inf)`` when the sphere is empty.
        """
        p = engine.constellation.order
        # Frontier state: (F, depth) root-first index paths + (F,) PDs.
        paths = np.empty((1, 0), dtype=np.int64)
        pds = np.zeros(1, dtype=float)
        for level in range(n_tx - 1, -1, -1):
            with tracer.span("bfs.level", level=level, frontier=paths.shape[0]):
                child_pds = yield ExpandRequest(level, paths, pds)  # (F, P)
            frontier = paths.shape[0]
            stats.nodes_expanded += frontier
            stats.nodes_generated += frontier * p
            stats.gemm_calls += 1
            depth = n_tx - 1 - level
            if depth:
                stats.gemm_flops += FLOPS_PER_CMAC * frontier * depth
            stats.gemm_flops += engine.metric.flops_per_norm * frontier * p
            if engine.record_trace:
                stats.batches.append(
                    BatchEvent(level=level, pool_size=frontier)
                )
            keep_n, keep_c = np.nonzero(child_pds < radius_sq)
            stats.nodes_pruned += frontier * p - keep_n.size
            acc = engine.level_acc
            if acc is not None:
                acc.nodes[level] += frontier
                acc.exps[level] += 1
                acc.pruned[level] += frontier * p - keep_n.size
            if keep_n.size == 0:
                return None, float("inf")
            new_pds = child_pds[keep_n, keep_c]
            if self.max_frontier is not None and keep_n.size > self.max_frontier:
                # K-best truncation: keep the lowest-PD survivors.
                top = np.argpartition(new_pds, self.max_frontier)[
                    : self.max_frontier
                ]
                keep_n, keep_c, new_pds = keep_n[top], keep_c[top], new_pds[top]
                stats.truncated += 1
            paths = extend_paths(paths, keep_n, keep_c)
            pds = new_pds
            stats.max_list_size = max(stats.max_list_size, paths.shape[0])
        stats.leaves_reached += paths.shape[0]
        best = int(np.argmin(pds))
        stats.radius_updates += 1
        stats.radius_trace.append(float(pds[best]))
        # paths are root-first (level M-1 .. 0); flip to ascending level.
        return paths[best, ::-1].copy(), float(pds[best])

    def solve_gen(self, engine, r, ybar, noise_var, stats, tracer):
        n_tx = int(r.shape[1])
        if engine.level_acc is not None:
            engine.level_acc.ensure(n_tx)
        init = engine.radius_policy.initial(
            r, ybar, engine.constellation, float(noise_var),
            metric=engine.metric,
        )
        radius_sq = float(init.radius_sq)
        stats.radius_trace.append(radius_sq)
        best, metric = yield from self._sweep(engine, n_tx, radius_sq, stats, tracer)
        while best is None and engine.radius_policy.can_escalate():
            radius_sq *= engine.radius_policy.escalation_factor
            stats.radius_trace.append(radius_sq)
            best, metric = yield from self._sweep(
                engine, n_tx, radius_sq, stats, tracer
            )
        if best is None:
            best, metric = babai_point(
                r, ybar, engine.constellation, metric=engine.metric
            )
            stats.truncated += 1
        return best, metric


class _SweepPolicy(TraversalPolicy):
    """Shared breadth-first sweep shape of the fixed-workload policies.

    K-best and FSD consult no radius policy at all: they sweep root to
    leaves exactly once, keeping survivors by their own rule, and the
    best surviving leaf is the decision. K-best records the decision
    metric as its one ``radius_trace`` entry (its survivor list acts as
    an implicit shrinking bound); FSD's schedule has no bound of any
    kind, so its trace stays empty.
    """

    #: Whether the final decision metric is logged as a radius update.
    final_metric_in_trace = True

    def solve_gen(self, engine, r, ybar, noise_var, stats, tracer):
        n_tx = int(r.shape[1])
        if engine.level_acc is not None:
            engine.level_acc.ensure(n_tx)
        p = engine.constellation.order
        paths = np.empty((1, 0), dtype=np.int64)
        pds = np.zeros(1, dtype=float)
        for level in range(n_tx - 1, -1, -1):
            child_pds = yield ExpandRequest(level, paths, pds)
            width = paths.shape[0]
            stats.nodes_expanded += width
            stats.nodes_generated += width * p
            stats.gemm_calls += 1
            depth = n_tx - 1 - level
            if depth:
                stats.gemm_flops += FLOPS_PER_CMAC * width * depth
            stats.gemm_flops += engine.metric.flops_per_norm * width * p
            if engine.record_trace:
                stats.batches.append(BatchEvent(level=level, pool_size=width))
            pruned_before = stats.nodes_pruned
            keep_n, keep_c, pds = self._select(level, n_tx, child_pds, stats)
            acc = engine.level_acc
            if acc is not None:
                acc.nodes[level] += width
                acc.exps[level] += 1
                acc.pruned[level] += stats.nodes_pruned - pruned_before
            paths = extend_paths(paths, keep_n, keep_c)
            stats.max_list_size = max(stats.max_list_size, paths.shape[0])
        stats.leaves_reached += paths.shape[0]
        best = int(np.argmin(pds))
        if self.final_metric_in_trace:
            stats.radius_updates += 1
            stats.radius_trace.append(float(pds[best]))
        # The generator protocol requires at least one yield before
        # returning, which the level loop always provides (n_tx >= 1).
        return paths[best, ::-1].copy(), float(pds[best])

    @abc.abstractmethod
    def _select(self, level, n_tx, child_pds, stats):
        """Choose the survivors of one level.

        Returns ``(keep_n, keep_c, pds)``: parent row indices, child
        column indices and the survivors' PDs.
        """


class KBestPolicy(_SweepPolicy):
    """Breadth-first with the K lowest-PD survivors per level.

    Parameters
    ----------
    k:
        Survivors kept per level. ``k >= P^M`` recovers exhaustive ML;
        small ``k`` trades BER for a hard workload bound. Typical
        hardware choices are 8–64.
    """

    def __init__(self, *, k: int = 16) -> None:
        self.k = check_positive_int(k, "k")

    def _select(self, level, n_tx, child_pds, stats):
        p = child_pds.shape[1]
        flat = child_pds.ravel()
        keep = min(self.k, flat.size)
        if keep < flat.size:
            chosen = np.argpartition(flat, keep)[:keep]
            stats.nodes_pruned += flat.size - keep
        else:
            chosen = np.arange(flat.size)
        keep_n, keep_c = np.divmod(chosen, p)
        return keep_n, keep_c, flat[chosen]


class FsdPolicy(_SweepPolicy):
    """Fixed-complexity schedule: full enumeration, then SIC.

    Parameters
    ----------
    rho:
        Number of fully-enumerated levels (``P^rho`` candidate paths).
        The classic choice for square systems is small (1 or 2).
    """

    final_metric_in_trace = False

    def __init__(self, *, rho: int = 1) -> None:
        self.rho = check_positive_int(rho, "rho")

    def _select(self, level, n_tx, child_pds, stats):
        width, p = child_pds.shape
        depth_from_root = n_tx - 1 - level
        if depth_from_root < self.rho:
            # Full-expansion phase: keep every child.
            keep_n = np.repeat(np.arange(width), p)
            keep_c = np.tile(np.arange(p), width)
            return keep_n, keep_c, child_pds.ravel().copy()
        # SIC phase: single best child per candidate.
        keep_n = np.arange(width)
        keep_c = np.argmin(child_pds, axis=1)
        return keep_n, keep_c, child_pds[keep_n, keep_c]


class ScalarGemvBackend:
    """Per-frame serial PD evaluation (one GEMV-shaped GEMM per pool).

    Drives a single frame's search generator to completion against a
    :class:`~repro.core.gemm.GemmEvaluator` — the CPU reference path.
    Passing a prebuilt :class:`~repro.core.gemm.ChannelKernel` skips the
    per-frame R validation and per-level precompute (block fading: R is
    shared by every frame of a block).
    """

    def run(self, engine, r, ybar, noise_var, stats, tracer, *, kernel=None):
        evaluator = GemmEvaluator(
            r, ybar, engine.constellation, kernel=kernel, metric=engine.metric
        )
        result = drive_serial(
            engine.solve_gen(r, ybar, noise_var, stats, tracer), evaluator
        )
        stats.gemm_time_s += evaluator.gemm_time_s
        return result


class FusedGemmBackend:
    """Cross-frame fused PD evaluation (the BLAS-2 -> BLAS-3 refactor).

    Runs ``B`` frames' search generators in lockstep against one
    :class:`~repro.core.gemm.BatchedGemmEvaluator`, stacking same-level
    node pools into single GEMMs. Generators run with ``NULL_TRACER``:
    the span stack is per-context, not per-frame, so spans opened across
    yields of interleaved frames would corrupt the nesting.

    After :meth:`run`, :attr:`fused_gemm_calls` holds the number of
    cross-frame GEMMs the batch actually issued.
    """

    def __init__(self) -> None:
        self.fused_gemm_calls = 0

    def run(self, engine, r, ybars, noise_var, stats_list, *, kernel=None):
        evaluator = BatchedGemmEvaluator(
            r, ybars, engine.constellation, kernel=kernel, metric=engine.metric
        )
        searches = [
            engine.solve_gen(r, ybars[f], noise_var, stats_list[f], NULL_TRACER)
            for f in range(ybars.shape[0])
        ]
        outcomes = drive_lockstep(searches, evaluator)
        self.fused_gemm_calls = evaluator.fused_gemm_calls
        # GEMM time inside a fused call is not separable per frame; split
        # it evenly, mirroring decode_batch's wall-time attribution.
        share = evaluator.gemm_time_s / max(len(stats_list), 1)
        for stats in stats_list:
            stats.gemm_time_s += share
        return outcomes


def build_engine(
    engine: str,
    constellation,
    policy: "TraversalPolicy",
    *,
    radius_policy=None,
    metric=None,
    record_trace: bool = True,
) -> "TraversalEngine":
    """Construct a :class:`TraversalEngine` for the named ``engine``.

    ``"numpy"`` builds the reference engine defined here;
    ``"compiled"`` builds the fused-kernel
    :class:`~repro.core.compiled.CompiledTraversalEngine` (imported
    lazily so :mod:`repro.core.traversal` never depends on the optional
    Numba machinery). Callers are expected to have resolved
    availability already (:func:`repro.core.compiled.resolve_engine`);
    passing ``"compiled"`` here always builds the compiled engine, which
    runs interpreted when Numba is absent.
    """
    check_in(engine, "engine", ("numpy", "compiled"))
    if engine == "compiled":
        from repro.core.compiled import CompiledTraversalEngine

        return CompiledTraversalEngine(
            constellation,
            policy,
            radius_policy=radius_policy,
            metric=metric,
            record_trace=record_trace,
        )
    return TraversalEngine(
        constellation,
        policy,
        radius_policy=radius_policy,
        metric=metric,
        record_trace=record_trace,
    )


class TraversalEngine:
    """One search policy bound to a constellation and radius schedule.

    Parameters
    ----------
    constellation:
        Symbol alphabet.
    policy:
        The :class:`TraversalPolicy` deciding the expansion schedule.
    radius_policy:
        Initial-radius strategy consulted by the radius-driven policies
        (best-FS / DFS / BFS); the fixed-workload policies (K-best, FSD)
        ignore it. ``None`` is only valid for the latter.
    metric:
        Partial-distance metric (name or
        :class:`~repro.core.metric.PartialDistanceMetric`); ``None``
        selects the ℓ₂ reference. Threaded to the evaluators, the flop
        accounting and the radius policy, so every traversal policy
        composes with every metric.
    record_trace:
        Keep the per-expansion :class:`BatchEvent` list in the stats.

    When :attr:`level_acc` is set to a :class:`LevelAccumulator` (the
    detector layer does this when a metrics registry is live), every
    policy folds per-level traversal totals into it — nodes expanded,
    expansion batches and nodes pruned per tree level. The detector
    flushes it into labelled counters once per solve. ``None`` (the
    default) costs one attribute read per expansion.
    """

    def __init__(
        self,
        constellation,
        policy: TraversalPolicy,
        *,
        radius_policy=None,
        metric=None,
        record_trace: bool = True,
    ) -> None:
        self.constellation = constellation
        self.policy = policy
        self.radius_policy = radius_policy
        self.metric = resolve_metric(metric)
        self.record_trace = record_trace
        #: Optional per-level traversal accumulator (see class docstring).
        self.level_acc: LevelAccumulator | None = None
        #: Fused per-expansion telemetry closure, rebuilt per solve by
        #: the pooled policies (``None`` when both the accumulator and
        #: the ambient tracer are off — the common case).
        self.expand_hook = None

    def solve_gen(self, r, ybar, noise_var, stats, tracer):
        """The policy's search generator for one frame (see lockstep)."""
        return self.policy.solve_gen(self, r, ybar, noise_var, stats, tracer)

    def solve(self, r, ybar, noise_var, stats, tracer, backend=None, *, kernel=None):
        """Solve one pre-triangularised frame; returns (indices, metric).

        ``kernel`` is an optional prebuilt
        :class:`~repro.core.gemm.ChannelKernel` for ``r`` — pass it when
        decoding many frames against one channel so the R validation and
        per-level precompute run once per block, not once per frame.
        """
        backend = backend or ScalarGemvBackend()
        return backend.run(self, r, ybar, noise_var, stats, tracer, kernel=kernel)

    def solve_batch(self, r, ybars, noise_var, stats_list, backend=None, *, kernel=None):
        """Solve ``B`` frames with cross-frame fused GEMMs.

        Returns ``(outcomes, backend)`` where ``outcomes[f]`` is frame
        ``f``'s ``(indices, metric)`` — bit-identical to per-frame
        :meth:`solve` — and the backend exposes ``fused_gemm_calls``.
        ``kernel`` as in :meth:`solve`.
        """
        backend = backend or FusedGemmBackend()
        outcomes = backend.run(self, r, ybars, noise_var, stats_list, kernel=kernel)
        return outcomes, backend
