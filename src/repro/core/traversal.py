"""Unified tree-traversal engine: search policy x evaluation backend.

The paper's central claim is that one sphere-decoding algorithm can be
re-targeted across execution substrates (CPU BLAS-3, GPU, FPGA dataflow)
because *what to expand next* is separable from *how partial distances
are evaluated*. This module is that separation made concrete:

``TraversalPolicy``
    What to expand next. Each policy is a search **generator** over the
    :class:`~repro.core.lockstep.ExpandRequest` protocol: it yields
    same-level node pools and receives the ``(B, P)`` child partial
    distances, never touching an evaluator directly.

    * :class:`BestFirstPolicy` — global priority queue on PD with
      same-level pooling (the paper's Best-FS, Alg. 1).
    * :class:`DfsPolicy` — LIFO with PD-sorted child insertion (the
      sorted-DFS of Fig. 3; pool size 1 recovers Geosphere's schedule).
    * :class:`BfsPolicy` — level-synchronous frontier sweep (the
      GPU baseline of Arfaoui et al., one GEMM per level).
    * :class:`KBestPolicy` — breadth-first with K survivors per level
      (fixed-throughput hardware detector; not exact).
    * :class:`FsdPolicy` — fixed-complexity schedule: full enumeration
      on ``rho`` levels, single-best-child SIC below (not exact).

``ScalarGemvBackend`` / ``FusedGemmBackend``
    How child PDs are computed. The scalar backend drives one frame's
    generator serially against a :class:`~repro.core.gemm.GemmEvaluator`;
    the fused backend runs many frames' generators in lockstep against a
    :class:`~repro.core.gemm.BatchedGemmEvaluator`, stacking same-level
    pools across frames into single BLAS-3 calls. Both produce
    bit-identical child PDs (shared ``_stacked_gemv`` kernel), so every
    policy gets cross-frame batch decoding for free.

``TraversalEngine``
    Binds a constellation, a policy and a radius policy. The detector
    classes in :mod:`repro.detectors` are thin configurations of this
    engine; all of them emit the uniform
    :class:`~repro.core.stats.BatchEvent` trace the FPGA pipeline
    simulator replays.

Exactness of the best-first / DFS policies is property-tested against
brute force in ``tests/test_sphere_decoder_exactness.py``; equivalence
of the scalar and fused backends in ``tests/test_parallel_mc.py``.
"""

from __future__ import annotations

import abc
import heapq

import numpy as np

from repro.core.enumeration import CHILD_ORDERS, child_order
from repro.core.gemm import (
    FLOPS_PER_CMAC,
    FLOPS_PER_NORM,
    BatchedGemmEvaluator,
    GemmEvaluator,
)
from repro.core.lockstep import ExpandRequest, drive_lockstep, drive_serial
from repro.core.radius import babai_point
from repro.core.stats import BatchEvent, DecodeStats
from repro.core.tree import SearchNode, path_to_level_indices, root_node
from repro.obs.log import get_logger
from repro.obs.tracer import NULL_TRACER
from repro.util.validation import check_in, check_positive_int

_log = get_logger(__name__)


class TraversalPolicy(abc.ABC):
    """What to expand next — a search schedule over the SD tree.

    A policy is stateless across decodes: :meth:`solve_gen` returns a
    fresh generator per frame, so one policy instance can drive many
    interleaved frames (the fused backend relies on this).
    """

    @abc.abstractmethod
    def solve_gen(self, engine: "TraversalEngine", r, ybar, noise_var, stats, tracer):
        """Search generator for one frame's full solve.

        Yields :class:`~repro.core.lockstep.ExpandRequest`s and returns
        ``(indices_by_level, reduced_metric)``; the backend chooses the
        evaluator (serial or cross-frame fused). ``tracer`` scopes any
        spans the policy opens — pass ``NULL_TRACER`` when several
        generators run interleaved (lockstep batching), where spans
        opened across yields of different frames would corrupt the
        nesting stack.
        """


class _PooledTreePolicy(TraversalPolicy):
    """Shared solve shape of the leaf-first (best-FS / DFS) policies.

    Owns the radius schedule the paper's decoder uses: initial radius
    from the engine's radius policy, geometric escalation while the
    sphere is empty — abandoned once the node cap truncates a search,
    since a larger radius can only expand the workload — and a Babai
    fallback when every escalation came back empty.
    """

    #: Strategy label used in ``sd.solve`` span args and detector attrs.
    strategy: str

    def __init__(self, *, max_nodes: int | None = None) -> None:
        self.max_nodes = (
            None if max_nodes is None else check_positive_int(max_nodes, "max_nodes")
        )

    def solve_gen(self, engine, r, ybar, noise_var, stats, tracer):
        n_tx = int(r.shape[1])
        with tracer.span("sd.solve", strategy=self.strategy, n_tx=n_tx):
            init = engine.radius_policy.initial(
                r, ybar, engine.constellation, float(noise_var)
            )
            bound = float(init.radius_sq)
            incumbent = init.incumbent_indices
            stats.radius_trace.append(bound)
            while True:
                with tracer.span("sd.search", bound=bound):
                    incumbent, bound = yield from self._search(
                        engine, n_tx, bound, incumbent, stats, tracer
                    )
                if incumbent is not None or not engine.radius_policy.can_escalate():
                    break
                if stats.truncated:
                    # The search hit the node cap before finding any leaf —
                    # a larger radius can only make that worse; give up and
                    # fall back to the Babai point below.
                    break
                bound *= engine.radius_policy.escalation_factor
                stats.radius_trace.append(bound)
            if incumbent is None:
                incumbent, bound = babai_point(r, ybar, engine.constellation)
                stats.truncated = max(stats.truncated, 1)
                _log.debug(
                    "sphere empty after escalation; falling back to Babai "
                    "point (metric %.4g)",
                    bound,
                )
        return np.asarray(incumbent), float(bound)

    @abc.abstractmethod
    def _search(self, engine, n_tx, bound, incumbent, stats, tracer):
        """One full tree exploration under the given initial bound.

        Generator (driven via ``yield from``); returns the best complete
        solution found (ascending-level indices) and its metric — or
        ``(incumbent, bound)`` unchanged when the sphere is empty.
        """

    def _expand_pool(self, engine, pool, n_tx, stats, tracer):
        """Request evaluation of a same-level node pool (one GEMM).

        Generator: yields the :class:`ExpandRequest`, receives the
        ``(B, P)`` child PDs, accounts the work in ``stats`` with the
        exact FLOP formulas of :class:`GemmEvaluator`, and returns the
        child PDs — so per-frame counters match the serial evaluator's
        no matter which backend ran the GEMM.
        """
        level = pool[0].level
        depth = n_tx - 1 - level
        order = engine.constellation.order
        parent_idx = np.fromiter(
            (i for node in pool for i in node.path),
            dtype=np.int64,
            count=len(pool) * depth,
        ).reshape(len(pool), depth)
        parent_pds = np.fromiter(
            (node.pd for node in pool), dtype=float, count=len(pool)
        )
        child_pds = yield ExpandRequest(level, parent_idx, parent_pds)
        stats.nodes_expanded += len(pool)
        stats.nodes_generated += len(pool) * order
        stats.gemm_calls += 1
        if depth:
            stats.gemm_flops += FLOPS_PER_CMAC * len(pool) * depth
        stats.gemm_flops += FLOPS_PER_NORM * len(pool) * order
        if engine.record_trace:
            stats.batches.append(BatchEvent(level=level, pool_size=len(pool)))
        if tracer.enabled:
            tracer.instant("sd.batch", level=level, pool=len(pool))
        return child_pds

    @staticmethod
    def _accept_leaves(pool, child_pds, bound, incumbent, stats, n_tx):
        """Fold a batch of leaf evaluations into the incumbent/bound."""
        in_sphere = child_pds < bound
        stats.leaves_reached += int(np.count_nonzero(in_sphere))
        stats.nodes_pruned += int(in_sphere.size - np.count_nonzero(in_sphere))
        flat = int(np.argmin(child_pds))
        n, c = divmod(flat, child_pds.shape[1])
        if child_pds[n, c] < bound:
            bound = float(child_pds[n, c])
            path = pool[n].path + (c,)
            incumbent = path_to_level_indices(path, n_tx)
            stats.radius_updates += 1
            stats.radius_trace.append(bound)
        return incumbent, bound


class BestFirstPolicy(_PooledTreePolicy):
    """Global priority queue on PD with same-level pooling (Alg. 1).

    Parameters
    ----------
    pool_size:
        Up to this many same-level frontier nodes are popped together
        and evaluated in one GEMM batch. 1 recovers pure best-first;
        larger pools trade a little search discipline for bigger (more
        FPGA/GPU-friendly) GEMMs. Never affects exactness — only nodes
        already inside the sphere are pooled.
    max_nodes:
        Optional safety cap on expanded nodes; when hit, the best
        incumbent so far is returned and ``stats.truncated`` is set.
    """

    strategy = "best-first"

    def __init__(self, *, pool_size: int = 8, max_nodes: int | None = None) -> None:
        super().__init__(max_nodes=max_nodes)
        self.pool_size = check_positive_int(pool_size, "pool_size")

    def _search(self, engine, n_tx, bound, incumbent, stats, tracer):
        seq = 1
        heap: list[SearchNode] = [root_node(n_tx)]
        while heap:
            if heap[0].pd >= bound:
                break  # heap is PD-ordered: nothing left can improve
            first = heapq.heappop(heap)
            pool = [first]
            while (
                len(pool) < self.pool_size
                and heap
                and heap[0].level == first.level
                and heap[0].pd < bound
            ):
                pool.append(heapq.heappop(heap))
            child_pds = yield from self._expand_pool(
                engine, pool, n_tx, stats, tracer
            )
            if first.level == 0:
                incumbent, bound = self._accept_leaves(
                    pool, child_pds, bound, incumbent, stats, n_tx
                )
            else:
                mask = child_pds < bound
                stats.nodes_pruned += int(mask.size - np.count_nonzero(mask))
                next_level = first.level - 1
                for i, node in enumerate(pool):
                    for c in np.nonzero(mask[i])[0]:
                        heapq.heappush(
                            heap,
                            SearchNode(
                                pd=float(child_pds[i, c]),
                                seq=seq,
                                level=next_level,
                                path=node.path + (int(c),),
                            ),
                        )
                        seq += 1
                stats.max_list_size = max(stats.max_list_size, len(heap))
            if self.max_nodes is not None and stats.nodes_expanded >= self.max_nodes:
                stats.truncated += 1
                break
        return incumbent, bound


class DfsPolicy(_PooledTreePolicy):
    """Depth-first with per-level PD-sorted child insertion (Fig. 3).

    Parameters
    ----------
    child_ordering:
        ``"sorted"`` (Best-FS/Geosphere behaviour) or ``"natural"``;
        fixes the stack push order.
    max_nodes:
        Optional safety cap on expanded nodes.
    """

    strategy = "dfs"

    def __init__(
        self, *, child_ordering: str = "sorted", max_nodes: int | None = None
    ) -> None:
        super().__init__(max_nodes=max_nodes)
        self.child_ordering = check_in(
            child_ordering, "child_ordering", CHILD_ORDERS
        )

    def _search(self, engine, n_tx, bound, incumbent, stats, tracer):
        seq = 1
        stack: list[SearchNode] = [root_node(n_tx)]
        while stack:
            node = stack.pop()
            if node.pd >= bound:
                # Generated inside an older, looser sphere; the radius has
                # shrunk since — prune on pop.
                stats.nodes_pruned += 1
                continue
            child_pds = yield from self._expand_pool(
                engine, [node], n_tx, stats, tracer
            )
            if node.level == 0:
                incumbent, bound = self._accept_leaves(
                    [node], child_pds, bound, incumbent, stats, n_tx
                )
            else:
                pds = child_pds[0]
                order = child_order(pds, self.child_ordering)
                mask = pds < bound
                stats.nodes_pruned += int(mask.size - np.count_nonzero(mask))
                next_level = node.level - 1
                # Push worst-first so the best child is on top of the LIFO
                # (the sorted insertion of Fig. 3).
                for c in order[::-1]:
                    if mask[c]:
                        stack.append(
                            SearchNode(
                                pd=float(pds[c]),
                                seq=seq,
                                level=next_level,
                                path=node.path + (int(c),),
                            )
                        )
                        seq += 1
                stats.max_list_size = max(stats.max_list_size, len(stack))
            if self.max_nodes is not None and stats.nodes_expanded >= self.max_nodes:
                stats.truncated += 1
                break
        return incumbent, bound


class BfsPolicy(TraversalPolicy):
    """Level-synchronous frontier sweep (the [1]/GPU strategy).

    All of its pruning comes from the initial radius; if a level ends
    with an empty frontier the radius escalates and the sweep restarts.
    Unlike the leaf-first policies, escalation continues even after a
    frontier truncation (the truncated sweep may simply have dropped the
    sphere's occupants).

    Parameters
    ----------
    max_frontier:
        Optional cap on the surviving frontier per level (K-best style
        truncation). ``None`` keeps every in-sphere node, as in [1] —
        exact *within the sphere* but memory-hungry for 16-QAM.
    """

    def __init__(self, *, max_frontier: int | None = None) -> None:
        self.max_frontier = (
            None
            if max_frontier is None
            else check_positive_int(max_frontier, "max_frontier")
        )

    def _sweep(self, engine, n_tx, radius_sq, stats, tracer):
        """One full root-to-leaves BFS sweep under a fixed radius.

        Yields one :class:`ExpandRequest` per level and receives the
        child PDs. Returns ``(best_indices_by_level, best_metric)`` or
        ``(None, inf)`` when the sphere is empty.
        """
        p = engine.constellation.order
        # Frontier state: (F, depth) root-first index paths + (F,) PDs.
        paths = np.empty((1, 0), dtype=np.int64)
        pds = np.zeros(1, dtype=float)
        for level in range(n_tx - 1, -1, -1):
            with tracer.span("bfs.level", level=level, frontier=paths.shape[0]):
                child_pds = yield ExpandRequest(level, paths, pds)  # (F, P)
            frontier = paths.shape[0]
            stats.nodes_expanded += frontier
            stats.nodes_generated += frontier * p
            stats.gemm_calls += 1
            depth = n_tx - 1 - level
            if depth:
                stats.gemm_flops += FLOPS_PER_CMAC * frontier * depth
            stats.gemm_flops += FLOPS_PER_NORM * frontier * p
            if engine.record_trace:
                stats.batches.append(
                    BatchEvent(level=level, pool_size=frontier)
                )
            keep_n, keep_c = np.nonzero(child_pds < radius_sq)
            stats.nodes_pruned += frontier * p - keep_n.size
            if keep_n.size == 0:
                return None, float("inf")
            new_pds = child_pds[keep_n, keep_c]
            if self.max_frontier is not None and keep_n.size > self.max_frontier:
                # K-best truncation: keep the lowest-PD survivors.
                top = np.argpartition(new_pds, self.max_frontier)[
                    : self.max_frontier
                ]
                keep_n, keep_c, new_pds = keep_n[top], keep_c[top], new_pds[top]
                stats.truncated += 1
            paths = np.concatenate(
                [paths[keep_n], keep_c[:, None].astype(np.int64)], axis=1
            )
            pds = new_pds
            stats.max_list_size = max(stats.max_list_size, paths.shape[0])
        stats.leaves_reached += paths.shape[0]
        best = int(np.argmin(pds))
        stats.radius_updates += 1
        stats.radius_trace.append(float(pds[best]))
        # paths are root-first (level M-1 .. 0); flip to ascending level.
        return paths[best, ::-1].copy(), float(pds[best])

    def solve_gen(self, engine, r, ybar, noise_var, stats, tracer):
        n_tx = int(r.shape[1])
        init = engine.radius_policy.initial(
            r, ybar, engine.constellation, float(noise_var)
        )
        radius_sq = float(init.radius_sq)
        stats.radius_trace.append(radius_sq)
        best, metric = yield from self._sweep(engine, n_tx, radius_sq, stats, tracer)
        while best is None and engine.radius_policy.can_escalate():
            radius_sq *= engine.radius_policy.escalation_factor
            stats.radius_trace.append(radius_sq)
            best, metric = yield from self._sweep(
                engine, n_tx, radius_sq, stats, tracer
            )
        if best is None:
            best, metric = babai_point(r, ybar, engine.constellation)
            stats.truncated += 1
        return best, metric


class _SweepPolicy(TraversalPolicy):
    """Shared breadth-first sweep shape of the fixed-workload policies.

    K-best and FSD consult no radius policy at all: they sweep root to
    leaves exactly once, keeping survivors by their own rule, and the
    best surviving leaf is the decision. K-best records the decision
    metric as its one ``radius_trace`` entry (its survivor list acts as
    an implicit shrinking bound); FSD's schedule has no bound of any
    kind, so its trace stays empty.
    """

    #: Whether the final decision metric is logged as a radius update.
    final_metric_in_trace = True

    def solve_gen(self, engine, r, ybar, noise_var, stats, tracer):
        n_tx = int(r.shape[1])
        p = engine.constellation.order
        paths = np.empty((1, 0), dtype=np.int64)
        pds = np.zeros(1, dtype=float)
        for level in range(n_tx - 1, -1, -1):
            child_pds = yield ExpandRequest(level, paths, pds)
            width = paths.shape[0]
            stats.nodes_expanded += width
            stats.nodes_generated += width * p
            stats.gemm_calls += 1
            depth = n_tx - 1 - level
            if depth:
                stats.gemm_flops += FLOPS_PER_CMAC * width * depth
            stats.gemm_flops += FLOPS_PER_NORM * width * p
            if engine.record_trace:
                stats.batches.append(BatchEvent(level=level, pool_size=width))
            keep_n, keep_c, pds = self._select(level, n_tx, child_pds, stats)
            paths = np.concatenate(
                [paths[keep_n], keep_c[:, None].astype(np.int64)], axis=1
            )
            stats.max_list_size = max(stats.max_list_size, paths.shape[0])
        stats.leaves_reached += paths.shape[0]
        best = int(np.argmin(pds))
        if self.final_metric_in_trace:
            stats.radius_updates += 1
            stats.radius_trace.append(float(pds[best]))
        # The generator protocol requires at least one yield before
        # returning, which the level loop always provides (n_tx >= 1).
        return paths[best, ::-1].copy(), float(pds[best])

    @abc.abstractmethod
    def _select(self, level, n_tx, child_pds, stats):
        """Choose the survivors of one level.

        Returns ``(keep_n, keep_c, pds)``: parent row indices, child
        column indices and the survivors' PDs.
        """


class KBestPolicy(_SweepPolicy):
    """Breadth-first with the K lowest-PD survivors per level.

    Parameters
    ----------
    k:
        Survivors kept per level. ``k >= P^M`` recovers exhaustive ML;
        small ``k`` trades BER for a hard workload bound. Typical
        hardware choices are 8–64.
    """

    def __init__(self, *, k: int = 16) -> None:
        self.k = check_positive_int(k, "k")

    def _select(self, level, n_tx, child_pds, stats):
        p = child_pds.shape[1]
        flat = child_pds.ravel()
        keep = min(self.k, flat.size)
        if keep < flat.size:
            chosen = np.argpartition(flat, keep)[:keep]
            stats.nodes_pruned += flat.size - keep
        else:
            chosen = np.arange(flat.size)
        keep_n, keep_c = np.divmod(chosen, p)
        return keep_n, keep_c, flat[chosen]


class FsdPolicy(_SweepPolicy):
    """Fixed-complexity schedule: full enumeration, then SIC.

    Parameters
    ----------
    rho:
        Number of fully-enumerated levels (``P^rho`` candidate paths).
        The classic choice for square systems is small (1 or 2).
    """

    final_metric_in_trace = False

    def __init__(self, *, rho: int = 1) -> None:
        self.rho = check_positive_int(rho, "rho")

    def _select(self, level, n_tx, child_pds, stats):
        width, p = child_pds.shape
        depth_from_root = n_tx - 1 - level
        if depth_from_root < self.rho:
            # Full-expansion phase: keep every child.
            keep_n = np.repeat(np.arange(width), p)
            keep_c = np.tile(np.arange(p), width)
            return keep_n, keep_c, child_pds.ravel().copy()
        # SIC phase: single best child per candidate.
        keep_n = np.arange(width)
        keep_c = np.argmin(child_pds, axis=1)
        return keep_n, keep_c, child_pds[keep_n, keep_c]


class ScalarGemvBackend:
    """Per-frame serial PD evaluation (one GEMV-shaped GEMM per pool).

    Drives a single frame's search generator to completion against a
    :class:`~repro.core.gemm.GemmEvaluator` — the CPU reference path.
    """

    def run(self, engine, r, ybar, noise_var, stats, tracer):
        evaluator = GemmEvaluator(r, ybar, engine.constellation)
        return drive_serial(
            engine.solve_gen(r, ybar, noise_var, stats, tracer), evaluator
        )


class FusedGemmBackend:
    """Cross-frame fused PD evaluation (the BLAS-2 -> BLAS-3 refactor).

    Runs ``B`` frames' search generators in lockstep against one
    :class:`~repro.core.gemm.BatchedGemmEvaluator`, stacking same-level
    node pools into single GEMMs. Generators run with ``NULL_TRACER``:
    the span stack is per-context, not per-frame, so spans opened across
    yields of interleaved frames would corrupt the nesting.

    After :meth:`run`, :attr:`fused_gemm_calls` holds the number of
    cross-frame GEMMs the batch actually issued.
    """

    def __init__(self) -> None:
        self.fused_gemm_calls = 0

    def run(self, engine, r, ybars, noise_var, stats_list):
        evaluator = BatchedGemmEvaluator(r, ybars, engine.constellation)
        searches = [
            engine.solve_gen(r, ybars[f], noise_var, stats_list[f], NULL_TRACER)
            for f in range(ybars.shape[0])
        ]
        outcomes = drive_lockstep(searches, evaluator)
        self.fused_gemm_calls = evaluator.fused_gemm_calls
        return outcomes


class TraversalEngine:
    """One search policy bound to a constellation and radius schedule.

    Parameters
    ----------
    constellation:
        Symbol alphabet.
    policy:
        The :class:`TraversalPolicy` deciding the expansion schedule.
    radius_policy:
        Initial-radius strategy consulted by the radius-driven policies
        (best-FS / DFS / BFS); the fixed-workload policies (K-best, FSD)
        ignore it. ``None`` is only valid for the latter.
    record_trace:
        Keep the per-expansion :class:`BatchEvent` list in the stats.
    """

    def __init__(
        self,
        constellation,
        policy: TraversalPolicy,
        *,
        radius_policy=None,
        record_trace: bool = True,
    ) -> None:
        self.constellation = constellation
        self.policy = policy
        self.radius_policy = radius_policy
        self.record_trace = record_trace

    def solve_gen(self, r, ybar, noise_var, stats, tracer):
        """The policy's search generator for one frame (see lockstep)."""
        return self.policy.solve_gen(self, r, ybar, noise_var, stats, tracer)

    def solve(self, r, ybar, noise_var, stats, tracer, backend=None):
        """Solve one pre-triangularised frame; returns (indices, metric)."""
        backend = backend or ScalarGemvBackend()
        return backend.run(self, r, ybar, noise_var, stats, tracer)

    def solve_batch(self, r, ybars, noise_var, stats_list, backend=None):
        """Solve ``B`` frames with cross-frame fused GEMMs.

        Returns ``(outcomes, backend)`` where ``outcomes[f]`` is frame
        ``f``'s ``(indices, metric)`` — bit-identical to per-frame
        :meth:`solve` — and the backend exposes ``fused_gemm_calls``.
        """
        backend = backend or FusedGemmBackend()
        outcomes = backend.run(self, r, ybars, noise_var, stats_list)
        return outcomes, backend
