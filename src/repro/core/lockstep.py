"""Lockstep scheduling of concurrent frame searches over fused GEMMs.

The tree-search detectors express their traversal as *search
generators*: plain Python generators that yield an :class:`ExpandRequest`
whenever they need child partial distances and receive the ``(B, P)``
result back at the ``yield``. The search logic (pruning, incumbent
updates, stats accounting) lives entirely inside the generator; *who*
evaluates the GEMM is the driver's choice:

* :func:`drive_serial` — one frame, one
  :class:`~repro.core.gemm.GemmEvaluator`; reproduces the classic
  per-frame decode exactly.
* :func:`drive_lockstep` — many frames against one shared
  :class:`~repro.core.gemm.BatchedGemmEvaluator`. Each round, every
  live frame has exactly one pending expansion; requests at the same
  tree level are stacked into a single fused GEMM (the paper's
  BLAS-2 -> BLAS-3 refactor applied across frames). Each frame still
  sees bit-identical child PDs — rows of the fused product are the
  same independent dot products the serial evaluator computes — so
  batched decoding never changes a decode result or a node count.
"""

from __future__ import annotations

from typing import Generator, NamedTuple, Sequence

import numpy as np

from repro.core.gemm import BatchedGemmEvaluator, GemmEvaluator


class ExpandRequest(NamedTuple):
    """One pending node-pool expansion emitted by a search generator.

    Attributes
    ----------
    level:
        Tree level being expanded (``n_tx - 1`` at the root's children,
        ``0`` at the leaves).
    parent_indices:
        ``(B, depth)`` root-first index paths of the pool nodes.
    parent_pds:
        ``(B,)`` accumulated partial distances of the pool nodes.
    """

    level: int
    parent_indices: np.ndarray
    parent_pds: np.ndarray


#: A search generator: yields expansion requests, receives ``(B, P)``
#: child-PD arrays, and returns its final value via ``StopIteration``.
SearchGenerator = Generator[ExpandRequest, np.ndarray, object]


def drive_serial(search: SearchGenerator, evaluator: GemmEvaluator):
    """Run one search generator to completion against one evaluator.

    Returns the generator's return value. Requests are evaluated on the
    unchecked fast path (:meth:`GemmEvaluator.expand_unchecked`): the
    traversal policies emit correctly-shaped ``int64``/``float64``
    arrays by construction, so per-call re-validation would only tax
    the hot loop. Hand-written generators must honour the same
    contract (or be driven against :meth:`GemmEvaluator.expand`).
    """
    try:
        request = next(search)
        while True:
            child_pds = evaluator.expand_unchecked(
                request.level, request.parent_indices, request.parent_pds
            )
            request = search.send(child_pds)
    except StopIteration as stop:
        return stop.value


def drive_lockstep(
    searches: Sequence[SearchGenerator],
    evaluator: BatchedGemmEvaluator,
) -> list:
    """Run many frame searches in lockstep rounds with fused expansions.

    Each round collects the pending request of every live frame, groups
    them by tree level (requests at different levels have different
    interference depths and cannot share an operand), issues **one**
    fused :meth:`BatchedGemmEvaluator.expand` per level group, and
    resumes each frame with its slice of the result. Frames finish
    independently; the rounds continue until every generator returns.

    Returns the generators' return values, in input order. Grouping and
    stacking follow ascending ``(level, frame)`` order, so the schedule
    — and therefore every floating-point result — is deterministic.
    """
    if evaluator.n_frames < len(searches):
        raise ValueError(
            f"evaluator holds {evaluator.n_frames} frames but "
            f"{len(searches)} searches were supplied"
        )
    results = [None] * len(searches)
    pending: dict[int, ExpandRequest] = {}

    def advance(frame: int, payload, *, first: bool = False) -> None:
        try:
            request = (
                next(searches[frame]) if first else searches[frame].send(payload)
            )
        except StopIteration as stop:
            results[frame] = stop.value
        else:
            pending[frame] = request

    for frame in range(len(searches)):
        advance(frame, None, first=True)
    while pending:
        round_requests = sorted(pending.items())
        pending.clear()
        by_level: dict[int, list[tuple[int, ExpandRequest]]] = {}
        for frame, request in round_requests:
            by_level.setdefault(request.level, []).append((frame, request))
        for level in sorted(by_level):
            group = by_level[level]
            parent_indices = np.concatenate(
                [req.parent_indices for _, req in group], axis=0
            )
            parent_pds = np.concatenate([req.parent_pds for _, req in group])
            frame_rows = np.concatenate(
                [
                    np.full(req.parent_pds.shape[0], frame, dtype=np.int64)
                    for frame, req in group
                ]
            )
            child_pds = evaluator.expand_unchecked(
                level, parent_indices, parent_pds, frame_rows
            )
            offset = 0
            for frame, req in group:
                rows = req.parent_pds.shape[0]
                advance(frame, child_pds[offset : offset + rows])
                offset += rows
    return results
