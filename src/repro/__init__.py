"""repro — GEMM-based Best-First-Search sphere decoding for large MIMO.

Reproduction of *"Signal Detection for Large MIMO Systems Using Sphere
Decoding on FPGAs"* (Hassan, Dabah, Ltaief, Fahmy — IPPS 2023).

The package is organised in layers:

``repro.mimo``
    Link-level substrate: constellations, modulation, Rayleigh fading
    channel, QR preprocessing, Monte Carlo simulation, BER metrics.
``repro.detectors``
    Detector zoo: linear (MRC/ZF/MMSE), brute-force ML, GEMM-BFS (the GPU
    baseline of Arfaoui et al.), Geosphere-style depth-first SD and the
    fixed-complexity SD.
``repro.core``
    The paper's contribution: the GEMM-based sphere decoder with
    Best-First / sorted-DFS traversal and batched BLAS-3 node evaluation.
``repro.fpga``
    Cycle-approximate simulator of the paper's FPGA dataflow pipeline
    (systolic GEMM engine, prefetch/double buffering, Meta State Table,
    resource and power models for the Alveo U280).
``repro.perfmodel``
    Calibrated CPU / GPU / WARP execution-time models used to regenerate
    the paper's comparison figures.
``repro.bench``
    Experiment harness that regenerates every table and figure.
``repro.obs``
    Observability layer: span/counter tracing, Chrome ``trace_event``
    and JSONL exporters, percentile metrics, structured logging.

Quickstart::

    import numpy as np
    from repro import MIMOSystem, SphereDecoder

    rng = np.random.default_rng(0)
    system = MIMOSystem(n_tx=8, n_rx=8, modulation="4qam")
    frame = system.random_frame(snr_db=8.0, rng=rng)
    decoder = SphereDecoder(system.constellation)
    decoder.prepare(frame.channel, noise_var=frame.noise_var)
    result = decoder.detect(frame.received)
    assert np.array_equal(result.indices, frame.symbol_indices)
"""

from repro.mimo.constellation import Constellation
from repro.mimo.channel import ChannelModel, snr_db_to_noise_var
from repro.mimo.system import MIMOSystem, Frame
from repro.mimo.montecarlo import MonteCarloEngine, SweepResult
from repro.detectors.sphere import SphereDecoder
from repro.core.radius import (
    InfiniteRadius,
    NoiseScaledRadius,
    FixedRadius,
    BabaiRadius,
)
from repro.detectors.base import Detector, DetectionResult, DecodeStats
from repro.detectors.linear import (
    ZeroForcingDetector,
    MMSEDetector,
    MRCDetector,
)
from repro.detectors.ml import MLDetector
from repro.detectors.sd_bfs import GemmBfsDecoder
from repro.detectors.geosphere import GeosphereDecoder
from repro.detectors.fsd import FixedComplexityDecoder
from repro.detectors.soft import SoftOutputSphereDetector, SoftDetectionResult
from repro.detectors.partitioned import PartitionedSphereDecoder
from repro.detectors.sic import SICDetector
from repro.detectors.kbest import KBestDecoder
from repro.detectors.lr import LRZFDetector
from repro.detectors.real_sd import RealSphereDecoder
from repro.mimo.correlation import KroneckerChannelModel
from repro.mimo.estimation import EstimatedChannelLink
from repro.coding import ConvolutionalCode, ViterbiDecoder
from repro.fpga.pipeline import FPGAPipeline, PipelineConfig
from repro.fpga.device import AlveoU280
from repro.obs import Tracer, current_tracer, use_tracer

__version__ = "1.0.0"

__all__ = [
    "Constellation",
    "ChannelModel",
    "snr_db_to_noise_var",
    "MIMOSystem",
    "Frame",
    "MonteCarloEngine",
    "SweepResult",
    "SphereDecoder",
    "InfiniteRadius",
    "NoiseScaledRadius",
    "FixedRadius",
    "BabaiRadius",
    "Detector",
    "DetectionResult",
    "DecodeStats",
    "ZeroForcingDetector",
    "MMSEDetector",
    "MRCDetector",
    "MLDetector",
    "GemmBfsDecoder",
    "GeosphereDecoder",
    "FixedComplexityDecoder",
    "SoftOutputSphereDetector",
    "SoftDetectionResult",
    "PartitionedSphereDecoder",
    "SICDetector",
    "KBestDecoder",
    "LRZFDetector",
    "RealSphereDecoder",
    "KroneckerChannelModel",
    "EstimatedChannelLink",
    "ConvolutionalCode",
    "ViterbiDecoder",
    "FPGAPipeline",
    "PipelineConfig",
    "AlveoU280",
    "Tracer",
    "current_tracer",
    "use_tracer",
    "__version__",
]
