"""Command-line interface: ``repro-sd`` (or ``python -m repro``).

Subcommands
-----------
``list``
    Show the available experiments (tables/figures/ablations).
``detectors``
    Show the detector registry: every registered kind with its
    parameters, capability flags (exact ML, fused batch decoding,
    FPGA trace replay), partial-distance metric / lattice
    representation axes and the paper figures that use it.
    ``--exact-only`` hides the approximate kinds.
``experiment NAME``
    Run one experiment and print its table. ``--channels`` and
    ``--frames`` trade Monte Carlo depth for wall time.
``decode``
    Decode one random frame and print the decision, the search
    statistics and the modelled platform times — a minimal end-to-end
    demonstration.
``ber``
    Run a quick BER sweep for a chosen detector.
``trace``
    Decode one frame under the tracer; emit a Chrome ``trace_event``
    JSON (loadable in ``chrome://tracing`` / Perfetto) plus the FPGA
    pipeline's per-stage cycle breakdown.
``stats``
    Replay an experiment under the tracer and print the metrics
    summary (span percentiles + counters).
``profile``
    Performance attribution (see ``docs/observability.md`` §7):
    ``profile run`` executes an experiment under the tracer with
    cProfile scoped to spans and prints the self/total-time call-tree
    plus per-span function hotspots (optionally recording the run and
    writing flamegraph artifacts); ``profile flame`` exports a
    recorded run's tree as collapsed-stack / speedscope flamegraphs;
    ``profile diff A B`` ranks per-span Δself-time between two
    recorded runs so a perf regression names its culprit span.
``serve``
    Streaming detection service capacity sweep: seeded multi-stream
    load through the coalescing batch scheduler
    (:mod:`repro.serve`), reporting p50/p95/p99 sojourn latency,
    throughput, batch fill and SLO attainment per stream count.
    ``--check`` turns it into a CI gate (exit 1 when the lightest
    point misses its p95 SLO or served results diverge from direct
    per-frame decoding); ``--record`` persists the capacity curve to
    the run registry so sweeps diff like any other experiment.
``runs``
    Inspect the persistent run registry: ``runs list``, ``runs show``,
    ``runs diff A B`` (per-SNR comparison tables) and ``runs report``
    (a self-contained markdown document). Record runs with
    ``experiment NAME --record``.
``obs``
    Live telemetry: ``obs tail RUN`` prints a run's metrics stream one
    line per snapshot (``--follow`` keeps polling until the run
    finishes) and ``obs top RUN`` renders a top-style table of the
    latest snapshot (totals, rates, per-shard progress and lag).

Global ``-v``/``-q`` flags raise/lower the ``repro`` logging channel's
verbosity (see :mod:`repro.obs.log`). Argument and configuration errors
(unknown experiment ids, malformed modulations, missing runs) exit with
code 2 and a one-line message instead of a traceback.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np


def _parse_snrs(text: str) -> list[float]:
    """Parse ``"4:20:4"`` (start:stop:step, inclusive) or ``"4,8,12"``.

    Rejects inputs that parse to *no* SNR points (empty string, bare
    commas, an empty range) — otherwise an experiment would silently
    run over zero SNRs and report nothing.
    """
    if ":" in text:
        parts = text.split(":")
        if len(parts) != 3:
            raise argparse.ArgumentTypeError(
                "range SNR must be start:stop:step, e.g. 4:20:4"
            )
        start, stop, step = (float(p) for p in parts)
        if step <= 0:
            raise argparse.ArgumentTypeError("SNR step must be positive")
        snrs = [float(s) for s in np.arange(start, stop + step / 2, step)]
    else:
        snrs = [float(p) for p in text.split(",") if p.strip()]
    if not snrs:
        raise argparse.ArgumentTypeError(
            f"no SNR values in {text!r}; expected e.g. 4:20:4 or 4,8,12"
        )
    return snrs


def _parse_modulation(text: str) -> str:
    """Normalise a modulation name; bare QAM orders like ``4`` work too."""
    name = text.strip().lower()
    if name.isdigit():
        name = f"{name}qam"
    return name


def _parse_stream_counts(text: str) -> list[int]:
    """Parse ``"2,8,32"`` into ascending positive stream counts."""
    try:
        counts = [int(p) for p in text.split(",") if p.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad stream counts {text!r}; expected e.g. 2,8,32"
        ) from None
    if not counts or any(c < 1 for c in counts):
        raise argparse.ArgumentTypeError(
            f"stream counts must be positive integers, got {text!r}"
        )
    return counts


def _parse_mimo(text: str) -> tuple[int, int]:
    """Parse ``"10x10"`` into (n_tx, n_rx)."""
    try:
        tx, rx = text.lower().split("x")
        return int(tx), int(rx)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            "MIMO size must look like 10x10"
        ) from exc


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-sd",
        description=(
            "GEMM-based Best-FS sphere decoding for large MIMO "
            "(reproduction of Hassan et al., IPPS 2023)"
        ),
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="raise diagnostics verbosity (-v: INFO, -vv: DEBUG)",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="count",
        default=0,
        help="lower diagnostics verbosity (errors only)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    det = sub.add_parser(
        "detectors",
        help="list the detector registry (kinds, params, capabilities)",
    )
    det.add_argument(
        "--exact-only",
        action="store_true",
        help="only kinds whose decisions are exact maximum likelihood "
        "(hides approximate detectors such as kbest or the linf-metric "
        "variants)",
    )

    exp = sub.add_parser("experiment", help="run a paper experiment")
    exp.add_argument("name", help="experiment id, e.g. fig6, table1")
    exp.add_argument("--channels", type=int, default=None, help="channel realisations per SNR")
    exp.add_argument("--frames", type=int, default=None, help="frames per channel")
    exp.add_argument("--seed", type=int, default=2023)
    exp.add_argument(
        "--engine",
        choices=("numpy", "compiled"),
        default=None,
        help="traversal engine for every tree-search detector in the "
        "experiment (compiled requires numba; bit-identical results)",
    )
    exp.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="shard Monte Carlo channel blocks over N processes "
        "(bit-identical to serial; sweeps only)",
    )
    exp.add_argument(
        "--plot",
        action="store_true",
        help="also render an ASCII chart of the main series",
    )
    exp.add_argument(
        "--record",
        action="store_true",
        help="persist this run (manifest, series, metrics) to the run registry",
    )
    exp.add_argument(
        "--runs-dir",
        default="runs",
        metavar="DIR",
        help="run-registry root used with --record (default: runs/)",
    )

    dec = sub.add_parser("decode", help="decode one random frame end to end")
    dec.add_argument("--mimo", type=_parse_mimo, default=(10, 10))
    dec.add_argument("--mod", type=_parse_modulation, default="4qam")
    dec.add_argument("--snr", type=float, default=8.0)
    dec.add_argument("--seed", type=int, default=0)
    dec.add_argument(
        "--strategy", choices=("best-first", "dfs"), default="best-first"
    )
    dec.add_argument(
        "--engine",
        choices=("numpy", "compiled"),
        default=None,
        help="traversal engine (compiled = fused jitted kernels; "
        "bit-identical to numpy)",
    )

    ber = sub.add_parser("ber", help="quick BER sweep")
    ber.add_argument("--mimo", type=_parse_mimo, default=(10, 10))
    ber.add_argument("--mod", type=_parse_modulation, default="4qam")
    ber.add_argument("--snr", type=_parse_snrs, default=[4, 8, 12, 16, 20])
    ber.add_argument(
        "--detector",
        choices=("sd", "zf", "mmse", "mrc", "fsd", "bfs"),
        default="sd",
    )
    ber.add_argument("--channels", type=int, default=5)
    ber.add_argument("--frames", type=int, default=10)
    ber.add_argument("--seed", type=int, default=0)
    ber.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="shard channel blocks over N worker processes "
        "(bit-identical to --workers 1 for the same seed)",
    )
    ber.add_argument(
        "--batch",
        action="store_true",
        help="decode each block's frames as one fused GEMM batch "
        "(bit-identical; tree-search detectors only)",
    )

    trc = sub.add_parser(
        "trace",
        help="decode one frame under the tracer; emit a Chrome trace "
        "and the FPGA per-stage cycle breakdown",
    )
    trc.add_argument(
        "--size", type=int, default=10, help="N for an NxN MIMO system"
    )
    trc.add_argument(
        "--mimo",
        type=_parse_mimo,
        default=None,
        help="explicit TXxRX geometry (overrides --size)",
    )
    trc.add_argument(
        "--mod",
        type=_parse_modulation,
        default="4qam",
        help="modulation (e.g. 4qam, 16qam; a bare QAM order like 4 works)",
    )
    trc.add_argument("--snr", type=float, default=8.0)
    trc.add_argument("--seed", type=int, default=0)
    trc.add_argument(
        "--strategy", choices=("best-first", "dfs"), default="best-first"
    )
    trc.add_argument(
        "--design", choices=("optimized", "baseline"), default="optimized"
    )
    trc.add_argument(
        "--out", default="trace.json", help="Chrome trace output path"
    )
    trc.add_argument(
        "--jsonl", default=None, help="also write a JSONL event log here"
    )
    trc.add_argument(
        "--from-jsonl",
        dest="from_jsonl",
        default=None,
        metavar="PATH",
        help="re-render a saved JSONL event log as a Chrome trace "
        "instead of decoding",
    )

    st = sub.add_parser(
        "stats",
        help="replay an experiment under the tracer and print the "
        "metrics summary",
    )
    st.add_argument(
        "name", nargs="?", default="fig6", help="experiment id (see `list`)"
    )
    st.add_argument("--channels", type=int, default=2)
    st.add_argument("--frames", type=int, default=3)
    st.add_argument("--seed", type=int, default=2023)
    st.add_argument(
        "--trace", default=None, metavar="PATH", help="also write a Chrome trace"
    )
    st.add_argument(
        "--from-jsonl",
        dest="from_jsonl",
        default=None,
        metavar="PATH",
        help="summarise a saved JSONL event log instead of running "
        "an experiment",
    )
    st.add_argument(
        "--json",
        dest="json_out",
        default=None,
        metavar="PATH",
        help="also write the span/counter summary as machine-readable "
        "JSON to PATH ('-' for stdout), mirroring bench_kernels.py "
        "--json",
    )
    st.add_argument(
        "--engine",
        choices=("numpy", "compiled"),
        default=None,
        help="traversal engine for the replayed experiment",
    )

    prof = sub.add_parser(
        "profile",
        help="performance attribution: span self-time trees, "
        "flamegraphs and run-to-run perf diffs",
    )
    prof.add_argument(
        "--dir",
        dest="runs_dir",
        default="runs",
        metavar="DIR",
        help="run-registry root (default: runs/)",
    )
    prof_sub = prof.add_subparsers(dest="profile_command", required=True)
    prun = prof_sub.add_parser(
        "run",
        help="run an experiment under span-scoped cProfile and print "
        "the self/total-time attribution",
    )
    prun.add_argument(
        "name", nargs="?", default="smoke", help="experiment id (see `list`)"
    )
    prun.add_argument("--channels", type=int, default=None)
    prun.add_argument("--frames", type=int, default=None)
    prun.add_argument("--seed", type=int, default=2023)
    prun.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="functions per span in the hotspot tables (default: 10)",
    )
    prun.add_argument(
        "--out",
        default=None,
        metavar="BASE",
        help="write BASE.profile.json, BASE.collapsed.txt and "
        "BASE.speedscope.json",
    )
    prun.add_argument(
        "--record",
        action="store_true",
        help="persist the profiled run (manifest, series, metrics, "
        "trace, profile) to the run registry",
    )
    prun.add_argument(
        "--by",
        action="append",
        default=None,
        metavar="ARG",
        help="split the attribution by a span argument (repeatable): "
        "--by snr_db gives per-SNR subtrees (mc.point[snr_db=8]), "
        "--by level per-BFS-level ones",
    )
    pflame = prof_sub.add_parser(
        "flame",
        help="export a recorded run's span tree as flamegraph files",
    )
    pflame.add_argument("run", help="run id, unique prefix, latest[~N], or path")
    pflame.add_argument(
        "--out",
        default=None,
        metavar="BASE",
        help="output base path (default: artifacts/flame/<run id>); "
        "writes BASE.collapsed.txt and/or BASE.speedscope.json",
    )
    pflame.add_argument(
        "--format",
        choices=("collapsed", "speedscope", "both"),
        default="both",
        help="which flamegraph format(s) to write (default: both)",
    )
    pdiff = prof_sub.add_parser(
        "diff",
        help="ranked per-span Δself-time between two recorded runs",
    )
    pdiff.add_argument("run_a", help="base run (id, prefix, latest[~N], path)")
    pdiff.add_argument("run_b", help="compared run")
    pdiff.add_argument(
        "--top",
        type=int,
        default=None,
        metavar="N",
        help="show only the N largest movements",
    )
    pdiff.add_argument(
        "--check",
        action="store_true",
        help="exit 1 when any span regressed beyond the thresholds "
        "(CI self-diff gate)",
    )
    pdiff.add_argument(
        "--min-delta-ms",
        type=float,
        default=0.0,
        metavar="MS",
        help="with --check: ignore regressions smaller than MS "
        "milliseconds (default: 0)",
    )
    pdiff.add_argument(
        "--min-pct",
        type=float,
        default=0.0,
        metavar="PCT",
        help="with --check: ignore regressions below PCT%% of the base "
        "run's wall (default: 0)",
    )

    srv = sub.add_parser(
        "serve",
        help="streaming detection service: capacity sweep under a "
        "latency SLO (p50/p95/p99, throughput, batch fill)",
    )
    srv.add_argument("--mimo", type=_parse_mimo, default=(6, 6))
    srv.add_argument("--mod", type=_parse_modulation, default="4qam")
    srv.add_argument("--snr", type=float, default=8.0)
    srv.add_argument(
        "--streams",
        type=_parse_stream_counts,
        default=[2, 8, 32],
        metavar="N,N,...",
        help="stream counts to sweep (default: 2,8,32)",
    )
    srv.add_argument(
        "--rate",
        type=float,
        default=200.0,
        metavar="HZ",
        help="mean arrival rate per stream (default: 200 Hz)",
    )
    srv.add_argument(
        "--duration", type=float, default=0.25, help="trace horizon in seconds"
    )
    srv.add_argument(
        "--profile",
        choices=("poisson", "bursty", "uniform"),
        default="poisson",
        help="arrival process per stream",
    )
    srv.add_argument(
        "--detector",
        default="sd",
        metavar="KIND",
        help="registry detector kind (default: sd)",
    )
    srv.add_argument("--seed", type=int, default=2023)
    srv.add_argument(
        "--slo-ms",
        type=float,
        default=10.0,
        metavar="MS",
        help="latency SLO on arrival-to-delivery sojourn (default: 10)",
    )
    srv.add_argument(
        "--max-batch",
        type=int,
        default=32,
        help="scheduler batch-size flush trigger",
    )
    srv.add_argument(
        "--max-delay-ms",
        type=float,
        default=2.0,
        metavar="MS",
        help="scheduler deadline flush trigger (coalescing window)",
    )
    srv.add_argument(
        "--max-queue",
        type=int,
        default=64,
        help="per-stream queue bound (backpressure threshold)",
    )
    srv.add_argument(
        "--dynamic",
        action="store_true",
        help="size batches from the measured-cost EWMA instead of "
        "always waiting for max-batch",
    )
    srv.add_argument(
        "--streams-per-block",
        type=int,
        default=4,
        metavar="N",
        help="streams sharing one channel block (coalescing degree)",
    )
    srv.add_argument(
        "--service",
        default="measured",
        metavar="MODEL",
        help="service-time model: measured | fpga (deterministic "
        "pipeline seconds) | fixed:<us>",
    )
    srv.add_argument(
        "--check",
        action="store_true",
        help="exit 1 when the lightest point misses the p95 SLO or "
        "served results diverge from direct decoding (CI gate)",
    )
    srv.add_argument(
        "--record",
        action="store_true",
        help="persist the capacity curve to the run registry",
    )
    srv.add_argument(
        "--runs-dir",
        default="runs",
        metavar="DIR",
        help="run-registry root used with --record (default: runs/)",
    )

    obs = sub.add_parser(
        "obs",
        help="live telemetry: tail a run's metrics stream or show a "
        "top-style snapshot",
    )
    obs.add_argument(
        "--dir",
        dest="runs_dir",
        default="runs",
        metavar="DIR",
        help="run-registry root (default: runs/)",
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    tail = obs_sub.add_parser(
        "tail", help="print a run's metrics stream, one line per snapshot"
    )
    tail.add_argument("run", help="run id, unique prefix, latest[~N], or path")
    tail.add_argument(
        "-f",
        "--follow",
        action="store_true",
        help="keep following the stream until the run finishes",
    )
    tail.add_argument(
        "--poll",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="poll interval in follow mode (default: 0.5)",
    )
    top = obs_sub.add_parser(
        "top", help="one top-style snapshot table of a run's latest metrics"
    )
    top.add_argument("run", help="run id, unique prefix, latest[~N], or path")

    runs = sub.add_parser(
        "runs",
        help="inspect the persistent run registry (list/show/diff/report)",
    )
    runs.add_argument(
        "--dir",
        dest="runs_dir",
        default="runs",
        metavar="DIR",
        help="run-registry root (default: runs/)",
    )
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)
    runs_sub.add_parser("list", help="list recorded runs, oldest first")
    show = runs_sub.add_parser("show", help="render one recorded run")
    show.add_argument("run", help="run id, unique prefix, latest[~N], or path")
    show.add_argument("--markdown", action="store_true", help="emit markdown")
    diff = runs_sub.add_parser(
        "diff", help="per-SNR / per-span comparison of two runs"
    )
    diff.add_argument("run_a", help="base run (id, prefix, latest[~N], path)")
    diff.add_argument("run_b", help="compared run")
    diff.add_argument("--markdown", action="store_true", help="emit markdown")
    rep = runs_sub.add_parser(
        "report", help="self-contained markdown report of one run"
    )
    rep.add_argument("run", help="run id, unique prefix, latest[~N], or path")
    rep.add_argument(
        "--out", default=None, metavar="PATH", help="write the report here"
    )
    return parser


def _cmd_list() -> int:
    from repro.bench.experiments import EXPERIMENTS

    width = max(len(name) for name in EXPERIMENTS)
    for name, (_fn, description) in EXPERIMENTS.items():
        print(f"{name.ljust(width)}  {description}")
    return 0


def _cmd_detectors(args: argparse.Namespace | None = None) -> int:
    from repro.core.compiled import compiled_available
    from repro.detectors.registry import detector_entries

    exact_only = bool(args is not None and getattr(args, "exact_only", False))
    have_compiled = compiled_available()
    for entry in detector_entries():
        if exact_only and not entry.exact:
            continue
        caps = [
            label
            for flag, label in (
                (entry.exact, "exact-ML"),
                (entry.batch, "batch-decode"),
                (entry.fpga_replayable, "fpga-replay"),
            )
            if flag
        ]
        engines = ", ".join(entry.engines)
        if "compiled" in entry.engines and not have_compiled:
            engines += "  (compiled unavailable: numba not installed)"
        print(f"{entry.kind}: {entry.summary}")
        print(f"    capabilities : {', '.join(caps) if caps else '-'}")
        print(f"    metric       : {entry.metric}")
        print(f"    lattice      : {entry.lattice}")
        print(f"    engines      : {engines}")
        params = ", ".join(f"{k}={v!r}" for k, v in entry.defaults.items())
        print(f"    params       : {params if params else '-'}")
        figures = ", ".join(entry.figures)
        print(f"    figures      : {figures if figures else '-'}")
    return 0


def _engine_scope(engine: str | None):
    """Context applying an explicit ``--engine`` choice (no-op for None).

    An explicit ``--engine compiled`` on a host without Numba is a hard
    configuration error (exit 2 via ``main``), not a silent fallback —
    the user asked for a specific performance envelope.
    """
    from contextlib import nullcontext

    if engine is None:
        return nullcontext()
    from repro.core.compiled import require_compiled, use_engine

    if engine == "compiled":
        require_compiled()
    return use_engine(engine)


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.bench.experiments import EXPERIMENTS

    if args.name not in EXPERIMENTS:
        print(
            f"unknown experiment {args.name!r}; run `repro-sd list`",
            file=sys.stderr,
        )
        return 2
    fn, _description = EXPERIMENTS[args.name]
    kwargs = {}
    if args.channels is not None:
        kwargs["channels"] = args.channels
    if args.frames is not None:
        kwargs["frames_per_channel"] = args.frames
    if args.name not in ("table1",):
        kwargs["seed"] = args.seed
    if args.workers is not None:
        import inspect

        if "workers" not in inspect.signature(fn).parameters:
            print(
                f"experiment {args.name!r} does not support --workers",
                file=sys.stderr,
            )
            return 2
        kwargs["workers"] = args.workers
    if args.name == "table1":
        kwargs = {}
    if args.record:
        from repro.obs import (
            MetricsRegistry,
            RunRegistry,
            Tracer,
            use_metrics,
            use_tracer,
        )

        recorder = RunRegistry(args.runs_dir).new_run(
            args.name, seed=kwargs.get("seed"), config=dict(kwargs)
        )
        tracer = Tracer()
        metrics = MetricsRegistry()
        metrics.stream = recorder.stream_writer()
        try:
            with _engine_scope(args.engine), use_tracer(tracer), use_metrics(metrics):
                result = fn(**kwargs)
        except BaseException:
            metrics.tick(force=True)
            recorder.record_metrics(tracer, metrics)
            recorder.record_trace(tracer)
            recorder.record_profile(tracer)
            recorder.finalize("failed")
            raise
        metrics.tick(force=True)
        recorder.record_series(result)
        recorder.record_metrics(tracer, metrics)
        recorder.record_trace(tracer)
        recorder.record_profile(tracer)
        path = recorder.finalize()
        print(result.format())
        print(f"[obs] run recorded: {path}")
    else:
        with _engine_scope(args.engine):
            result = fn(**kwargs)
        print(result.format())
    if args.plot:
        chart = _plot_experiment(result)
        if chart:
            print()
            print(chart)
        else:
            print("(no chartable series for this experiment)")
    return 0


#: Chart configuration per experiment family: (x column, y columns, log_y).
_PLOT_SPECS = {
    "fig6": ("snr_db", ["cpu_ms", "fpga_baseline_ms", "fpga_optimized_ms"], True),
    "fig8": ("snr_db", ["cpu_ms", "fpga_baseline_ms", "fpga_optimized_ms"], True),
    "fig9": ("snr_db", ["cpu_ms", "fpga_baseline_ms", "fpga_optimized_ms"], True),
    "fig10": ("snr_db", ["cpu_ms", "fpga_baseline_ms", "fpga_optimized_ms"], True),
    "fig7": ("snr_db", ["sd_ber", "zf_ber", "mmse_ber"], True),
    "fig11": ("snr_db", ["gpu_bfs_ms", "fpga_opt_ms"], True),
    "fig12": ("snr_db", ["zf_ms", "geosphere_warp_ms", "fpga_opt_ms"], True),
    "ablation-search": ("snr_db", ["bestfs_nodes", "bfs_nodes"], True),
    "ablation-csi": ("pilot_snr_db", ["mean_nodes"], True),
    "ablation-correlation": ("rho", ["mean_nodes"], True),
    "ablation-parallel": ("n_pes", ["latency_speedup"], False),
}


def _plot_experiment(result):
    from repro.bench.plotting import plot_series_result

    spec = _PLOT_SPECS.get(result.experiment)
    if spec is None:
        return None
    x_col, y_cols, log_y = spec
    try:
        return plot_series_result(result, x_col, y_cols, log_y=log_y)
    except (KeyError, ValueError):
        return None


#: CLI ``--strategy`` choice -> registry kind (Babai-seeded exploration
#: variants, matching ``SphereDecoder``'s own defaults per strategy).
_STRATEGY_KINDS = {"best-first": "sd-bestfs", "dfs": "sd-dfs"}


def _cmd_decode(args: argparse.Namespace) -> int:
    from repro.detectors.registry import spec
    from repro.fpga.pipeline import FPGAPipeline, PipelineConfig
    from repro.mimo.system import MIMOSystem
    from repro.perfmodel import CPUCostModel

    n_tx, n_rx = args.mimo
    system = MIMOSystem(n_tx, n_rx, args.mod)
    rng = np.random.default_rng(args.seed)
    frame = system.random_frame(args.snr, rng)
    params = {} if args.engine is None else {"engine": args.engine}
    with _engine_scope(args.engine):
        decoder = spec(_STRATEGY_KINDS[args.strategy], system.constellation, **params)()
        decoder.prepare(frame.channel, noise_var=frame.noise_var)
        result = decoder.detect(frame.received)
    correct = bool(np.array_equal(result.indices, frame.symbol_indices))
    stats = result.stats
    print(f"system        : {system!r} @ {args.snr:g} dB")
    print(f"engine        : {decoder.engine_name}")
    print(f"sent indices  : {frame.symbol_indices.tolist()}")
    print(f"decoded       : {result.indices.tolist()}  ({'OK' if correct else 'symbol errors'})")
    print(f"metric        : {result.metric:.4f}")
    print(
        "search        : "
        f"{stats.nodes_expanded} expanded, {stats.nodes_generated} generated, "
        f"{stats.nodes_pruned} pruned, {stats.leaves_reached} leaves, "
        f"{stats.radius_updates} radius updates"
    )
    if stats.wall_time_s > 0:
        print(
            "host          : "
            f"{stats.nodes_per_sec:,.0f} nodes/s over "
            f"{stats.wall_time_s * 1e3:.3f} ms wall "
            f"(GEMM {stats.gemm_fraction:.0%}, "
            f"overhead {stats.host_overhead_s * 1e3:.3f} ms)"
        )
    order = system.constellation.order
    cpu_ms = CPUCostModel(n_rx=n_rx).decode_seconds(stats) * 1e3
    pipe = FPGAPipeline(
        PipelineConfig.optimized(order), n_tx=n_tx, n_rx=n_rx, order=order
    )
    fpga_ms = pipe.decode_report(stats).milliseconds
    print(f"modelled time : CPU {cpu_ms:.3f} ms | FPGA-optimized {fpga_ms:.3f} ms "
          f"({cpu_ms / fpga_ms:.1f}x)")
    return 0


def _cmd_ber(args: argparse.Namespace) -> int:
    from repro.bench.harness import bfs_gpu_decoder_factory, canonical_decoder_factory
    from repro.detectors.registry import spec
    from repro.mimo.montecarlo import MonteCarloEngine
    from repro.mimo.system import MIMOSystem

    n_tx, n_rx = args.mimo
    system = MIMOSystem(n_tx, n_rx, args.mod)
    const = system.constellation
    # DetectorSpecs (not lambdas) so every factory stays picklable for
    # --workers process sharding.
    factories = {
        "sd": canonical_decoder_factory(const),
        "zf": spec("zf", const),
        "mmse": spec("mmse", const),
        "mrc": spec("mrc", const),
        "fsd": spec("fsd", const),
        "bfs": bfs_gpu_decoder_factory(const),
    }
    engine = MonteCarloEngine(
        system,
        channels=args.channels,
        frames_per_channel=args.frames,
        seed=args.seed,
        keep_traces=False,
        workers=args.workers,
        batch_frames=args.batch,
    )
    sweep = engine.run(factories[args.detector], args.snr, detector_name=args.detector)
    print(f"{'SNR(dB)':>8}  {'BER':>10}  {'bits':>8}")
    for point in sweep.points:
        print(f"{point.snr_db:8.1f}  {point.ber:10.6f}  {point.errors.bits:8d}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.detectors.registry import spec
    from repro.fpga.pipeline import FPGAPipeline, PipelineConfig
    from repro.mimo.system import MIMOSystem
    from repro.obs import (
        Tracer,
        format_metrics,
        use_tracer,
        write_chrome_trace,
        write_jsonl,
    )

    if args.from_jsonl:
        from repro.obs import read_jsonl, tracer_from_events

        tracer = tracer_from_events(read_jsonl(args.from_jsonl))
        path = write_chrome_trace(tracer, args.out)
        print(
            f"Chrome trace written to {path} "
            f"({len(tracer.events)} events from {args.from_jsonl})"
        )
        return 0

    n_tx, n_rx = args.mimo if args.mimo is not None else (args.size, args.size)
    system = MIMOSystem(n_tx, n_rx, args.mod)
    rng = np.random.default_rng(args.seed)
    frame = system.random_frame(args.snr, rng)
    decoder = spec(_STRATEGY_KINDS[args.strategy], system.constellation)()
    order = system.constellation.order
    config = (
        PipelineConfig.optimized(order)
        if args.design == "optimized"
        else PipelineConfig.baseline(order)
    )
    pipe = FPGAPipeline(config, n_tx=n_tx, n_rx=n_rx, order=order)
    tracer = Tracer()
    with use_tracer(tracer):
        decoder.prepare(frame.channel, noise_var=frame.noise_var)
        result = decoder.detect(frame.received)
        report = pipe.decode_report(result.stats)
    correct = bool(np.array_equal(result.indices, frame.symbol_indices))
    print(f"system   : {system!r} @ {args.snr:g} dB, {args.strategy}")
    print(
        f"decoded  : {'OK' if correct else 'symbol errors'} "
        f"(metric {result.metric:.4f}, "
        f"{result.stats.nodes_expanded} nodes expanded)"
    )
    print()
    print(report.format_stage_breakdown())
    print()
    print(format_metrics(tracer, title="decode metrics"))
    path = write_chrome_trace(tracer, args.out)
    print()
    print(f"Chrome trace written to {path} (open in chrome://tracing or Perfetto)")
    if args.jsonl:
        print(f"JSONL event log written to {write_jsonl(tracer, args.jsonl)}")
    return 0


def _stats_json(tracer, source: str) -> dict:
    """Machine-readable span/counter summary (`stats --json`).

    Mirrors ``benchmarks/bench_kernels.py --json``: a single JSON
    document another tool can diff or plot — per-span count/total/
    percentiles in seconds, final counter values, and derived
    nodes-per-second rates.
    """
    from repro.obs import traversal_rates
    from repro.obs.registry import metrics_to_dict

    doc: dict = {"schema": 1, "source": source}
    doc.update(metrics_to_dict(tracer))
    doc["rates"] = traversal_rates(tracer)
    return doc


def _emit_stats_json(tracer, source: str, target: str) -> None:
    import json as _json
    from pathlib import Path

    doc = _stats_json(tracer, source)
    if target == "-":
        print(_json.dumps(doc, indent=1))
        return
    path = Path(target)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(_json.dumps(doc, indent=1) + "\n")
    print(f"JSON summary written to {path}")


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.bench.experiments import EXPERIMENTS
    from repro.obs import Tracer, format_metrics, use_tracer, write_chrome_trace

    if args.from_jsonl:
        from repro.obs import read_jsonl, tracer_from_events

        tracer = tracer_from_events(read_jsonl(args.from_jsonl))
        if args.json_out == "-":
            _emit_stats_json(tracer, args.from_jsonl, args.json_out)
        else:
            print(format_metrics(tracer, title=f"metrics: {args.from_jsonl}"))
            if args.json_out:
                _emit_stats_json(tracer, args.from_jsonl, args.json_out)
        if args.trace:
            path = write_chrome_trace(tracer, args.trace)
            print()
            print(f"Chrome trace written to {path}")
        return 0

    if args.name not in EXPERIMENTS:
        print(
            f"unknown experiment {args.name!r}; run `repro-sd list`",
            file=sys.stderr,
        )
        return 2
    fn, _description = EXPERIMENTS[args.name]
    kwargs = {}
    if args.name != "table1":
        kwargs = {
            "channels": args.channels,
            "frames_per_channel": args.frames,
            "seed": args.seed,
        }
    tracer = Tracer()
    with _engine_scope(args.engine), use_tracer(tracer):
        result = fn(**kwargs)
    if args.json_out == "-":
        _emit_stats_json(tracer, args.name, args.json_out)
    else:
        print(result.format())
        print()
        print(format_metrics(tracer, title=f"metrics: {args.name}"))
        if args.json_out:
            _emit_stats_json(tracer, args.name, args.json_out)
    if args.trace:
        from repro.bench.harness import resolve_trace_path

        path = write_chrome_trace(
            tracer, resolve_trace_path(args.trace, args.name)
        )
        print()
        print(f"Chrome trace written to {path}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.obs.profile import (
        diff_profiles,
        format_profile,
        format_profile_diff,
        load_profile,
        profile_experiment,
        write_collapsed,
        write_speedscope,
    )

    if args.profile_command == "run":
        result = profile_experiment(
            args.name,
            channels=args.channels,
            frames_per_channel=args.frames,
            seed=args.seed,
            functions_top=args.top,
            label_args=tuple(args.by or ()),
        )
        tree = result.tree
        print(
            format_profile(
                tree, title=f"profile: {args.name}", functions_top=args.top
            )
        )
        if args.out:
            base = Path(args.out)
            base.parent.mkdir(parents=True, exist_ok=True)
            profile_path = base.with_suffix(".profile.json")
            profile_path.write_text(_json_dumps(tree.to_dict()))
            collapsed = write_collapsed(tree, base.with_suffix(".collapsed.txt"))
            speedscope = write_speedscope(
                tree, base.with_suffix(".speedscope.json"), name=args.name
            )
            print()
            print(f"profile artifacts: {profile_path}, {collapsed}, {speedscope}")
        if args.record:
            from repro.obs import RunRegistry

            recorder = RunRegistry(args.runs_dir).new_run(
                args.name,
                seed=args.seed,
                config={"channels": args.channels, "frames": args.frames,
                        "profiled": True},
            )
            if result.series is not None and hasattr(result.series, "columns"):
                recorder.record_series(result.series)
            recorder.record_metrics(result.tracer)
            recorder.record_trace(result.tracer)
            recorder.record_profile(tree)
            path = recorder.finalize()
            print(f"[obs] run recorded: {path}")
        return 0

    from repro.obs.registry import RunRegistry

    registry = RunRegistry(args.runs_dir)
    if args.profile_command == "flame":
        run_dir = registry.resolve(args.run)
        tree = load_profile(run_dir)
        base = Path(args.out) if args.out else Path("artifacts/flame") / run_dir.name
        written = []
        if args.format in ("collapsed", "both"):
            written.append(write_collapsed(tree, base.with_suffix(".collapsed.txt")))
        if args.format in ("speedscope", "both"):
            written.append(
                write_speedscope(
                    tree, base.with_suffix(".speedscope.json"), name=run_dir.name
                )
            )
        for path in written:
            print(f"flamegraph written: {path}")
        return 0
    if args.profile_command == "diff":
        dir_a = registry.resolve(args.run_a)
        dir_b = registry.resolve(args.run_b)
        diff = diff_profiles(load_profile(dir_a), load_profile(dir_b))
        print(
            format_profile_diff(
                diff,
                top=args.top,
                title=f"profile diff {dir_a.name} -> {dir_b.name}",
            )
        )
        if args.check:
            regressed = diff.regressions(
                min_delta_s=args.min_delta_ms * 1e-3, min_pct=args.min_pct
            )
            if regressed:
                print(
                    f"CHECK FAILED: {len(regressed)} span(s) regressed "
                    "beyond thresholds",
                    file=sys.stderr,
                )
                return 1
            print("check OK: no span regressed beyond thresholds")
        return 0
    raise AssertionError(
        f"unhandled profile command {args.profile_command}"
    )  # pragma: no cover


def _json_dumps(doc: dict) -> str:
    import json

    return json.dumps(doc, indent=1)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.bench.serving import capacity_sweep, check_conformance
    from repro.detectors.registry import detector_entry

    entry = detector_entry(args.detector)  # KeyError -> exit 2 in main()
    n_tx, n_rx = args.mimo
    kwargs = dict(
        n_antennas=n_tx,
        n_rx=n_rx,
        modulation=args.mod,
        snr_db=args.snr,
        stream_counts=tuple(args.streams),
        rate_hz=args.rate,
        duration_s=args.duration,
        slo_ms=args.slo_ms,
        kind=args.detector,
        seed=args.seed,
        profile=args.profile,
        streams_per_block=args.streams_per_block,
        max_batch=args.max_batch,
        max_delay_ms=args.max_delay_ms,
        max_queue=args.max_queue,
        dynamic=args.dynamic,
        service=args.service,
    )
    if args.record:
        from repro.obs import (
            MetricsRegistry,
            RunRegistry,
            Tracer,
            use_metrics,
            use_tracer,
        )

        recorder = RunRegistry(args.runs_dir).new_run(
            "serve-capacity", seed=args.seed, config=dict(kwargs)
        )
        tracer = Tracer()
        metrics = MetricsRegistry()
        metrics.stream = recorder.stream_writer()
        try:
            with use_tracer(tracer), use_metrics(metrics):
                result = capacity_sweep(**kwargs)
        except BaseException:
            metrics.tick(force=True)
            recorder.record_metrics(tracer, metrics)
            recorder.record_trace(tracer)
            recorder.record_profile(tracer)
            recorder.finalize("failed")
            raise
        metrics.tick(force=True)
        recorder.record_series(result.series)
        recorder.record_metrics(tracer, metrics)
        recorder.record_trace(tracer)
        recorder.record_profile(tracer)
        path = recorder.finalize()
        print(result.format())
        print(f"[obs] run recorded: {path}")
    else:
        result = capacity_sweep(**kwargs)
        print(result.format())
    if args.check:
        failures: list[str] = []
        lightest = result.points[0]
        p95_ms = result.series.rows[0]["p95_ms"]
        if p95_ms > args.slo_ms:
            failures.append(
                f"p95 {p95_ms:.3f} ms exceeds the {args.slo_ms:g} ms SLO "
                f"at the lightest point ({lightest.n_streams} streams)"
            )
        if entry.exact and entry.fpga_replayable:
            mismatches = check_conformance(
                lightest, result.kind, result.system
            )
            for line in mismatches[:5]:
                failures.append(f"conformance: {line}")
            if len(mismatches) > 5:
                failures.append(
                    f"conformance: ... {len(mismatches) - 5} more"
                )
        for line in failures:
            print(f"CHECK FAILED: {line}", file=sys.stderr)
        if failures:
            return 1
        print(
            "serve check OK: p95 within SLO at the lightest point"
            + (
                ", served == direct"
                if entry.exact and entry.fpga_replayable
                else ""
            )
        )
    return 0


def _cmd_runs(args: argparse.Namespace) -> int:
    from repro.obs.registry import RunRegistry
    from repro.obs.report import (
        diff_runs,
        format_diff,
        format_report,
        format_run,
        format_run_list,
        load_run,
    )

    registry = RunRegistry(args.runs_dir)
    if args.runs_command == "list":
        print(format_run_list(load_run(p) for p in registry.run_dirs()))
        return 0
    if args.runs_command == "show":
        run = load_run(registry.resolve(args.run))
        print(format_run(run, markdown=args.markdown))
        return 0
    if args.runs_command == "diff":
        run_a = load_run(registry.resolve(args.run_a))
        run_b = load_run(registry.resolve(args.run_b))
        print(format_diff(diff_runs(run_a, run_b), markdown=args.markdown))
        return 0
    if args.runs_command == "report":
        text = format_report(load_run(registry.resolve(args.run)))
        if args.out:
            from pathlib import Path

            out = Path(args.out)
            out.parent.mkdir(parents=True, exist_ok=True)
            out.write_text(text + "\n")
            print(f"report written to {out}")
        else:
            print(text)
        return 0
    raise AssertionError(
        f"unhandled runs command {args.runs_command}"
    )  # pragma: no cover


def _cmd_obs(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.obs.registry import MANIFEST_FILE, STREAM_FILE, RunRegistry
    from repro.obs.stream import (
        follow_stream,
        format_stream_line,
        format_top,
        read_stream,
    )

    registry = RunRegistry(args.runs_dir)
    run_dir = registry.resolve(args.run, include_unfinished=True)
    stream_path = run_dir / STREAM_FILE

    def run_finished() -> bool:
        manifest = run_dir / MANIFEST_FILE
        if not manifest.exists():
            return False
        try:
            status = json.loads(manifest.read_text()).get("status")
        except (OSError, ValueError):
            return False
        return status in ("complete", "failed")

    if args.obs_command == "tail":
        if not args.follow:
            prev = None
            for doc in read_stream(stream_path):
                print(format_stream_line(doc, prev))
                prev = doc
            return 0
        prev = None
        try:
            for doc in follow_stream(
                stream_path, poll_s=args.poll, stop=run_finished
            ):
                print(format_stream_line(doc, prev), flush=True)
                prev = doc
        except KeyboardInterrupt:
            pass
        return 0
    if args.obs_command == "top":
        docs = read_stream(stream_path)
        print(format_top(docs, run=Path(run_dir).name))
        return 0
    raise AssertionError(
        f"unhandled obs command {args.obs_command}"
    )  # pragma: no cover


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "list":
        return _cmd_list()
    if args.command == "detectors":
        return _cmd_detectors(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "decode":
        return _cmd_decode(args)
    if args.command == "ber":
        return _cmd_ber(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "runs":
        return _cmd_runs(args)
    if args.command == "obs":
        return _cmd_obs(args)
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Configuration errors (unknown experiment/run ids, malformed
    modulations or geometries) exit with code 2 and a single
    ``error: ...`` line on stderr — no tracebacks for user mistakes.
    """
    from repro.obs.log import configure

    args = build_parser().parse_args(argv)
    configure(args.verbose - args.quiet)
    try:
        return _dispatch(args)
    except (ValueError, KeyError, FileNotFoundError) as exc:
        message = exc.args[0] if exc.args else exc
        print(f"error: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
