"""Small-scale Rayleigh fading channel and AWGN (paper section II-A).

The channel matrix ``H`` is ``n_rx x n_tx`` with i.i.d. CN(0, 1) entries
(zero-mean unit-variance circularly-symmetric complex Gaussians); the
noise vector has i.i.d. CN(0, sigma^2) entries. Received signal:
``y = H s + n``.

SNR conventions
---------------
With unit-energy symbols (Es = 1) two definitions are common:

``"per-antenna"`` (default)
    ``sigma^2 = M Es / rho``: rho is the aggregate receive SNR. This is
    the standard definition (the received power per antenna is
    ``E||h_i^T s||^2 = M Es`` for unit-variance fading) and it produces
    the strong SNR-dependence of decode complexity the paper's
    execution-time figures show.

``"per-stream"``
    ``sigma^2 = Es / rho``. Each *stream* has SNR rho at a single receive
    antenna; the array gain ``10 log10(M)`` dB is implicit, which is why
    papers using it (this one quotes usable BER for 10x10 4-QAM at only
    4 dB) report such low operating SNRs. See EXPERIMENTS.md for how the
    two conventions reconcile the paper's BER and runtime claims.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import as_generator
from repro.util.validation import check_in, check_positive_int

_CONVENTIONS = ("per-stream", "per-antenna")


def db_to_linear(db: float | np.ndarray) -> float | np.ndarray:
    """Convert decibels to a linear power ratio."""
    return 10.0 ** (np.asarray(db, dtype=float) / 10.0)


def linear_to_db(linear: float | np.ndarray) -> float | np.ndarray:
    """Convert a linear power ratio to decibels."""
    linear = np.asarray(linear, dtype=float)
    if np.any(linear <= 0):
        raise ValueError("linear power ratio must be positive")
    return 10.0 * np.log10(linear)


def snr_db_to_noise_var(
    snr_db: float,
    n_tx: int,
    *,
    es: float = 1.0,
    convention: str = "per-antenna",
) -> float:
    """Noise variance sigma^2 for a target SNR in dB.

    See the module docstring for the two conventions.
    """
    check_in(convention, "convention", _CONVENTIONS)
    n_tx = check_positive_int(n_tx, "n_tx")
    rho = float(db_to_linear(snr_db))
    if convention == "per-stream":
        return es / rho
    return n_tx * es / rho


def noise_var_to_snr_db(
    noise_var: float,
    n_tx: int,
    *,
    es: float = 1.0,
    convention: str = "per-antenna",
) -> float:
    """Inverse of :func:`snr_db_to_noise_var`."""
    check_in(convention, "convention", _CONVENTIONS)
    n_tx = check_positive_int(n_tx, "n_tx")
    if noise_var <= 0:
        raise ValueError(f"noise_var must be positive, got {noise_var}")
    if convention == "per-stream":
        return float(linear_to_db(es / noise_var))
    return float(linear_to_db(n_tx * es / noise_var))


@dataclass(frozen=True)
class ChannelModel:
    """i.i.d. Rayleigh flat-fading MIMO channel with AWGN.

    Parameters
    ----------
    n_tx, n_rx:
        Antenna counts (M transmitters, N receivers in the paper).
    es:
        Average transmit symbol energy (1.0 with normalised
        constellations).
    snr_convention:
        ``"per-stream"`` or ``"per-antenna"`` — see module docstring.
    """

    n_tx: int
    n_rx: int
    es: float = 1.0
    snr_convention: str = "per-antenna"

    def __post_init__(self) -> None:
        check_positive_int(self.n_tx, "n_tx")
        check_positive_int(self.n_rx, "n_rx")
        check_in(self.snr_convention, "snr_convention", _CONVENTIONS)
        if self.es <= 0:
            raise ValueError(f"es must be positive, got {self.es}")

    def noise_var(self, snr_db: float) -> float:
        """sigma^2 corresponding to ``snr_db`` under this model's convention."""
        return snr_db_to_noise_var(
            snr_db, self.n_tx, es=self.es, convention=self.snr_convention
        )

    def draw_channel(self, rng: object = None) -> np.ndarray:
        """Draw an ``(n_rx, n_tx)`` matrix of i.i.d. CN(0, 1) fading gains."""
        gen = as_generator(rng)
        shape = (self.n_rx, self.n_tx)
        return (gen.standard_normal(shape) + 1j * gen.standard_normal(shape)) / np.sqrt(2.0)

    def draw_noise(self, noise_var: float, rng: object = None) -> np.ndarray:
        """Draw an ``(n_rx,)`` vector of i.i.d. CN(0, noise_var) noise."""
        if noise_var < 0:
            raise ValueError(f"noise_var must be non-negative, got {noise_var}")
        gen = as_generator(rng)
        scale = np.sqrt(noise_var / 2.0)
        return scale * (
            gen.standard_normal(self.n_rx) + 1j * gen.standard_normal(self.n_rx)
        )

    def transmit(
        self,
        channel: np.ndarray,
        symbols: np.ndarray,
        noise_var: float,
        rng: object = None,
    ) -> np.ndarray:
        """Received vector ``y = H s + n`` for a given channel realisation."""
        channel = np.asarray(channel)
        symbols = np.asarray(symbols)
        if channel.shape != (self.n_rx, self.n_tx):
            raise ValueError(
                f"channel must have shape {(self.n_rx, self.n_tx)}, got {channel.shape}"
            )
        if symbols.shape != (self.n_tx,):
            raise ValueError(
                f"symbols must have shape {(self.n_tx,)}, got {symbols.shape}"
            )
        return channel @ symbols + self.draw_noise(noise_var, rng)
