"""Pilot-based channel estimation (imperfect CSI front end).

Algorithm 1 takes a "channel matrix *estimation* H" — in deployment the
receiver never knows H exactly; it estimates it from pilot symbols. This
module provides the standard block-pilot estimators so the detectors can
be studied under realistic CSI error:

* :func:`ls_estimate` — least squares, ``H_hat = Y P^H (P P^H)^{-1}``;
* :func:`lmmse_estimate` — regularised towards the fading prior,
  shrinking the LS estimate when pilots are noisy;
* :func:`orthogonal_pilots` — a unitary (Hadamard/DFT-based) pilot block,
  the optimal choice for white noise;
* :class:`EstimatedChannelLink` — convenience wrapper: transmit pilots,
  estimate, then hand detectors the *estimate* while data still flows
  through the *true* channel.

Estimation error behaves like extra noise at the detector, so BER floors
appear and sphere-decoder complexity rises — quantified in
``tests/test_estimation.py`` and the imperfect-CSI example.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mimo.channel import ChannelModel
from repro.util.rng import as_generator
from repro.util.validation import check_matrix, check_positive_int


def orthogonal_pilots(n_tx: int, length: int, es: float = 1.0) -> np.ndarray:
    """Unitary pilot block: ``(n_tx, length)`` with ``P P^H = length*Es*I``.

    Built from a DFT matrix, so it exists for any ``length >= n_tx``.
    """
    n_tx = check_positive_int(n_tx, "n_tx")
    length = check_positive_int(length, "length")
    if length < n_tx:
        raise ValueError(
            f"pilot length {length} must be at least n_tx={n_tx} for identifiability"
        )
    if es <= 0:
        raise ValueError(f"es must be positive, got {es}")
    k = np.arange(length)
    dft = np.exp(-2j * np.pi * np.outer(k, k) / length)
    return np.sqrt(es) * dft[:n_tx, :]


def ls_estimate(received_pilots: np.ndarray, pilots: np.ndarray) -> np.ndarray:
    """Least-squares channel estimate from a pilot block.

    ``received_pilots`` is ``(n_rx, L)``: the observation ``H P + N``.
    """
    received_pilots = check_matrix(received_pilots, "received_pilots")
    pilots = check_matrix(pilots, "pilots")
    if pilots.shape[1] != received_pilots.shape[1]:
        raise ValueError(
            f"pilot length mismatch: {pilots.shape[1]} vs {received_pilots.shape[1]}"
        )
    if pilots.shape[1] < pilots.shape[0]:
        raise ValueError("pilot block shorter than the number of streams")
    gram = pilots @ np.conj(pilots.T)
    return received_pilots @ np.conj(pilots.T) @ np.linalg.inv(gram)


def lmmse_estimate(
    received_pilots: np.ndarray,
    pilots: np.ndarray,
    noise_var: float,
    *,
    channel_var: float = 1.0,
) -> np.ndarray:
    """Linear MMSE estimate assuming i.i.d. CN(0, channel_var) entries.

    ``H_hat = Y P^H (P P^H + (sigma^2/channel_var) I)^{-1}`` — shrinks
    towards zero as pilots get noisier, strictly better MSE than LS.
    """
    received_pilots = check_matrix(received_pilots, "received_pilots")
    pilots = check_matrix(pilots, "pilots")
    if noise_var < 0:
        raise ValueError(f"noise_var must be non-negative, got {noise_var}")
    if channel_var <= 0:
        raise ValueError(f"channel_var must be positive, got {channel_var}")
    n_tx = pilots.shape[0]
    gram = pilots @ np.conj(pilots.T)
    reg = gram + (noise_var / channel_var) * np.eye(n_tx)
    return received_pilots @ np.conj(pilots.T) @ np.linalg.inv(reg)


@dataclass
class EstimationReport:
    """Outcome of one pilot phase."""

    estimate: np.ndarray
    true_channel: np.ndarray
    pilots: np.ndarray
    noise_var: float

    @property
    def mse(self) -> float:
        """Mean squared error per channel entry."""
        err = self.estimate - self.true_channel
        return float(np.mean(np.abs(err) ** 2))


class EstimatedChannelLink:
    """Pilot phase + imperfect-CSI detection harness.

    Draws a channel, sends an orthogonal pilot block through it, forms
    the LS or LMMSE estimate, and exposes both the truth (for the data
    transmission) and the estimate (for the detector).
    """

    def __init__(
        self,
        channel_model: ChannelModel,
        *,
        pilot_length: int | None = None,
        estimator: str = "lmmse",
    ) -> None:
        self.channel_model = channel_model
        self.pilot_length = pilot_length or channel_model.n_tx
        check_positive_int(self.pilot_length, "pilot_length")
        if self.pilot_length < channel_model.n_tx:
            raise ValueError("pilot_length must be at least n_tx")
        if estimator not in ("ls", "lmmse"):
            raise ValueError(f"estimator must be 'ls' or 'lmmse', got {estimator!r}")
        self.estimator = estimator

    def run_pilot_phase(
        self, snr_db: float, rng: object = None
    ) -> EstimationReport:
        """One full pilot transmission + estimation round."""
        gen = as_generator(rng)
        model = self.channel_model
        channel = model.draw_channel(gen)
        noise_var = model.noise_var(snr_db)
        pilots = orthogonal_pilots(model.n_tx, self.pilot_length, es=model.es)
        noise = np.stack(
            [model.draw_noise(noise_var, gen) for _ in range(self.pilot_length)],
            axis=1,
        )
        received = channel @ pilots + noise
        if self.estimator == "ls":
            estimate = ls_estimate(received, pilots)
        else:
            estimate = lmmse_estimate(received, pilots, noise_var)
        return EstimationReport(
            estimate=estimate,
            true_channel=channel,
            pilots=pilots,
            noise_var=noise_var,
        )
