"""Link-level MIMO substrate: constellations, channel, Monte Carlo engine."""

from repro.mimo.constellation import Constellation
from repro.mimo.modulation import Modulator, Demodulator
from repro.mimo.channel import (
    ChannelModel,
    snr_db_to_noise_var,
    noise_var_to_snr_db,
    db_to_linear,
    linear_to_db,
)
from repro.mimo.preprocessing import (
    qr_decompose,
    sorted_qr,
    effective_receive,
    real_decomposition,
)
from repro.mimo.metrics import bit_errors, symbol_errors, ErrorCounter
from repro.mimo.system import MIMOSystem, Frame
from repro.mimo.montecarlo import MonteCarloEngine, SweepResult, SnrPoint
from repro.mimo.correlation import (
    KroneckerChannelModel,
    exponential_correlation,
    matrix_sqrt,
)
from repro.mimo.estimation import (
    EstimatedChannelLink,
    EstimationReport,
    ls_estimate,
    lmmse_estimate,
    orthogonal_pilots,
)

__all__ = [
    "Constellation",
    "Modulator",
    "Demodulator",
    "ChannelModel",
    "snr_db_to_noise_var",
    "noise_var_to_snr_db",
    "db_to_linear",
    "linear_to_db",
    "qr_decompose",
    "sorted_qr",
    "effective_receive",
    "real_decomposition",
    "bit_errors",
    "symbol_errors",
    "ErrorCounter",
    "MIMOSystem",
    "Frame",
    "MonteCarloEngine",
    "SweepResult",
    "SnrPoint",
    "KroneckerChannelModel",
    "exponential_correlation",
    "matrix_sqrt",
    "EstimatedChannelLink",
    "EstimationReport",
    "ls_estimate",
    "lmmse_estimate",
    "orthogonal_pilots",
]
