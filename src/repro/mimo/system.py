"""End-to-end MIMO link model: bits -> symbols -> channel -> received.

:class:`MIMOSystem` bundles a constellation, modulator and channel model
for one ``M x N`` configuration and produces :class:`Frame` objects — one
transmit/receive realisation each — that detectors consume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mimo.channel import ChannelModel
from repro.mimo.constellation import Constellation
from repro.mimo.modulation import Demodulator, Modulator
from repro.util.rng import as_generator
from repro.util.validation import check_positive_int


@dataclass(frozen=True)
class Frame:
    """One Monte Carlo realisation of the link.

    ``received = channel @ symbols + noise`` with
    ``noise ~ CN(0, noise_var I)``.
    """

    bits: np.ndarray
    symbol_indices: np.ndarray
    symbols: np.ndarray
    channel: np.ndarray
    received: np.ndarray
    noise_var: float
    snr_db: float

    @property
    def n_tx(self) -> int:
        """Number of transmit antennas (streams)."""
        return self.symbols.shape[0]

    @property
    def n_rx(self) -> int:
        """Number of receive antennas."""
        return self.received.shape[0]


class MIMOSystem:
    """An ``n_tx x n_rx`` spatial-multiplexing MIMO link.

    Parameters
    ----------
    n_tx, n_rx:
        Antenna counts; ``n_rx >= n_tx`` is required by the QR-based
        detectors (the paper uses square systems: 10x10 ... 20x20).
    modulation:
        Constellation name (``"4qam"``, ``"16qam"``, ``"bpsk"`` ...) or a
        :class:`Constellation` instance.
    snr_convention:
        Passed to :class:`~repro.mimo.channel.ChannelModel`.
    """

    def __init__(
        self,
        n_tx: int,
        n_rx: int,
        modulation: str | Constellation = "4qam",
        *,
        snr_convention: str = "per-antenna",
    ) -> None:
        self.n_tx = check_positive_int(n_tx, "n_tx")
        self.n_rx = check_positive_int(n_rx, "n_rx")
        if isinstance(modulation, Constellation):
            self.constellation = modulation
        else:
            self.constellation = Constellation.from_name(modulation)
        self.channel_model = ChannelModel(
            n_tx=self.n_tx, n_rx=self.n_rx, snr_convention=snr_convention
        )
        self.modulator = Modulator(self.constellation)
        self.demodulator = Demodulator(self.constellation)

    @property
    def bits_per_frame(self) -> int:
        """Information bits carried by one transmit vector."""
        return self.n_tx * self.constellation.bits_per_symbol

    def noise_var(self, snr_db: float) -> float:
        """Noise variance for an SNR under the system's convention."""
        return self.channel_model.noise_var(snr_db)

    def random_frame(
        self,
        snr_db: float,
        rng: object = None,
        *,
        channel: np.ndarray | None = None,
    ) -> Frame:
        """Generate one random transmission.

        A fixed ``channel`` may be supplied to reuse a realisation across
        many frames (block-fading operation, which is also how the
        detectors amortise their ``prepare`` step).
        """
        gen = as_generator(rng)
        indices = self.modulator.random_indices(self.n_tx, gen)
        bits = self.constellation.indices_to_bits(indices)
        symbols = self.constellation.map_indices(indices)
        if channel is None:
            channel = self.channel_model.draw_channel(gen)
        else:
            channel = np.asarray(channel)
            if channel.shape != (self.n_rx, self.n_tx):
                raise ValueError(
                    f"channel must have shape {(self.n_rx, self.n_tx)}, "
                    f"got {channel.shape}"
                )
        noise_var = self.noise_var(snr_db)
        received = self.channel_model.transmit(channel, symbols, noise_var, gen)
        return Frame(
            bits=bits,
            symbol_indices=indices,
            symbols=symbols,
            channel=channel,
            received=received,
            noise_var=noise_var,
            snr_db=float(snr_db),
        )

    def __repr__(self) -> str:
        return (
            f"MIMOSystem({self.n_tx}x{self.n_rx}, "
            f"{self.constellation.name})"
        )
