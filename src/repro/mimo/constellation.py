"""Digital constellations: BPSK and Gray-mapped square QAM.

The paper evaluates 4-QAM and 16-QAM MIMO systems (its illustrative tree
example uses BPSK). This module provides those alphabets plus 64/256-QAM
for scaling studies, all normalised to unit average symbol energy so the
SNR bookkeeping in :mod:`repro.mimo.channel` stays independent of the
modulation order.

A :class:`Constellation` is immutable. Point ``i`` of a square QAM of
order :math:`Q = L^2` corresponds to the pair of per-dimension level
indices ``(i // L, i % L)``; its bit label is the concatenation of the
Gray codes of the two level indices, giving the standard property that
nearest neighbours differ in exactly one bit.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from repro.util.validation import check_positive_int

_NAME_ALIASES = {
    "bpsk": ("bpsk", 2),
    "qpsk": ("qam", 4),
    "4qam": ("qam", 4),
    "4-qam": ("qam", 4),
    "16qam": ("qam", 16),
    "16-qam": ("qam", 16),
    "64qam": ("qam", 64),
    "64-qam": ("qam", 64),
    "256qam": ("qam", 256),
    "256-qam": ("qam", 256),
}


def gray_code(n: np.ndarray | int) -> np.ndarray | int:
    """Binary-reflected Gray code of ``n`` (element-wise for arrays)."""
    return n ^ (n >> 1)


class Constellation:
    """An immutable complex signal alphabet with Gray bit labels.

    Parameters
    ----------
    name:
        Human-readable name (e.g. ``"16-QAM"``).
    points:
        Complex points; will be normalised to unit average energy unless
        ``normalize=False``.
    labels:
        ``(order, bits_per_symbol)`` boolean array: ``labels[i]`` is the
        bit pattern transmitted by point ``i`` (MSB first).
    """

    def __init__(
        self,
        name: str,
        points: np.ndarray,
        labels: np.ndarray,
        *,
        normalize: bool = True,
    ) -> None:
        points = np.asarray(points, dtype=np.complex128)
        if points.ndim != 1 or points.size < 2:
            raise ValueError("points must be a 1-D array of at least 2 symbols")
        order = points.size
        if order & (order - 1):
            raise ValueError(f"constellation order must be a power of two, got {order}")
        labels = np.asarray(labels, dtype=bool)
        bits = order.bit_length() - 1
        if labels.shape != (order, bits):
            raise ValueError(
                f"labels must have shape {(order, bits)}, got {labels.shape}"
            )
        # Labels must be a bijection onto {0,1}^bits.
        packed = np.packbits(labels, axis=1, bitorder="big")
        keys = np.zeros(order, dtype=np.int64)
        for byte_col in range(packed.shape[1]):
            keys = (keys << 8) | packed[:, byte_col]
        if np.unique(keys).size != order:
            raise ValueError("labels must assign a distinct bit pattern to each point")
        if normalize:
            energy = float(np.mean(np.abs(points) ** 2))
            points = points / np.sqrt(energy)
        self._name = str(name)
        self._points = points
        self._points.setflags(write=False)
        self._labels = labels
        self._labels.setflags(write=False)
        # Inverse map: integer bit pattern -> point index.
        self._label_to_index = np.empty(order, dtype=np.int64)
        weights = 1 << np.arange(bits - 1, -1, -1, dtype=np.int64)
        self._label_to_index[labels @ weights] = np.arange(order)
        self._label_to_index.setflags(write=False)
        # Square-QAM fast-slicing metadata, populated by the factory.
        self._qam_side: int | None = None
        self._qam_scale: float | None = None

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------

    @classmethod
    def from_name(cls, name: str) -> "Constellation":
        """Build a constellation from a name like ``"4qam"`` or ``"bpsk"``."""
        key = str(name).strip().lower().replace(" ", "")
        if key not in _NAME_ALIASES:
            raise ValueError(
                f"unknown constellation {name!r}; known: {sorted(_NAME_ALIASES)}"
            )
        kind, order = _NAME_ALIASES[key]
        return cls.bpsk() if kind == "bpsk" else cls.qam(order)

    @classmethod
    def bpsk(cls) -> "Constellation":
        """Binary phase-shift keying: bit 0 -> -1, bit 1 -> +1."""
        points = np.array([-1.0 + 0.0j, 1.0 + 0.0j])
        labels = np.array([[False], [True]])
        return cls("BPSK", points, labels, normalize=False)

    @classmethod
    def qam(cls, order: int) -> "Constellation":
        """Gray-mapped square QAM of the given order (4, 16, 64, 256...).

        Points are laid out on the regular grid with per-dimension levels
        ``{-(L-1), ..., -1, +1, ..., +(L-1)}`` (``L = sqrt(order)``) and
        normalised to unit average energy.
        """
        order = check_positive_int(order, "order")
        side = int(round(np.sqrt(order)))
        if side * side != order or order < 4 or (order & (order - 1)):
            raise ValueError(
                f"order must be a square power of two >= 4 (4, 16, 64...), got {order}"
            )
        bits_per_dim = side.bit_length() - 1
        levels = np.arange(side) * 2 - (side - 1)  # -(L-1) .. (L-1), step 2
        i_idx, q_idx = np.divmod(np.arange(order), side)
        points = levels[i_idx] + 1j * levels[q_idx]
        # Gray label per dimension; point label = gray(I) || gray(Q).
        gray = np.asarray(gray_code(np.arange(side)))
        dim_bits = (
            (gray[:, None] >> np.arange(bits_per_dim - 1, -1, -1)) & 1
        ).astype(bool)
        labels = np.concatenate([dim_bits[i_idx], dim_bits[q_idx]], axis=1)
        obj = cls(f"{order}-QAM", points, labels, normalize=True)
        obj._qam_side = side
        # After normalisation the levels were divided by sqrt(mean energy)
        # = sqrt(2 (order - 1) / 3); store the grid step / 2 for slicing.
        obj._qam_scale = 1.0 / np.sqrt(2.0 * (order - 1) / 3.0)
        return obj

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        """Human-readable name, e.g. ``"16-QAM"``."""
        return self._name

    @property
    def order(self) -> int:
        """Number of points ``P = |Omega|`` (the paper's modulation factor)."""
        return self._points.size

    @property
    def bits_per_symbol(self) -> int:
        """log2(order)."""
        return self._labels.shape[1]

    @property
    def points(self) -> np.ndarray:
        """Read-only ``(order,)`` complex array of unit-mean-energy points."""
        return self._points

    @property
    def labels(self) -> np.ndarray:
        """Read-only ``(order, bits_per_symbol)`` boolean Gray-label table."""
        return self._labels

    @property
    def is_square_qam(self) -> bool:
        """True when fast per-dimension slicing metadata is available."""
        return self._qam_side is not None

    @cached_property
    def average_energy(self) -> float:
        """Mean |point|^2 (1.0 by construction)."""
        return float(np.mean(np.abs(self._points) ** 2))

    @cached_property
    def min_distance(self) -> float:
        """Minimum Euclidean distance between any two points."""
        diff = self._points[:, None] - self._points[None, :]
        dist = np.abs(diff)
        np.fill_diagonal(dist, np.inf)
        return float(dist.min())

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------

    def map_indices(self, indices: np.ndarray) -> np.ndarray:
        """Point values for an array of point indices."""
        indices = np.asarray(indices)
        if indices.size and (indices.min() < 0 or indices.max() >= self.order):
            raise ValueError("point index out of range")
        return self._points[indices]

    def bits_to_indices(self, bits: np.ndarray) -> np.ndarray:
        """Map a flat bit array (length multiple of bits_per_symbol) to indices."""
        bits = np.asarray(bits).astype(bool)
        b = self.bits_per_symbol
        if bits.ndim != 1 or bits.size % b:
            raise ValueError(
                f"bits must be 1-D with length a multiple of {b}, got shape {bits.shape}"
            )
        groups = bits.reshape(-1, b)
        weights = 1 << np.arange(b - 1, -1, -1, dtype=np.int64)
        return self._label_to_index[groups @ weights]

    def indices_to_bits(self, indices: np.ndarray) -> np.ndarray:
        """Flat bit array for a sequence of point indices."""
        indices = np.asarray(indices)
        return self._labels[indices].reshape(-1)

    def nearest_indices(self, values: np.ndarray) -> np.ndarray:
        """Indices of the closest constellation points (vectorised slicer).

        Square QAM uses O(1) per-dimension rounding; other alphabets fall
        back to an exact argmin over all points.
        """
        values = np.asarray(values, dtype=np.complex128)
        if self._qam_side is not None:
            side, scale = self._qam_side, self._qam_scale
            i_lvl = np.clip(
                np.round((values.real / scale + side - 1) / 2.0), 0, side - 1
            ).astype(np.int64)
            q_lvl = np.clip(
                np.round((values.imag / scale + side - 1) / 2.0), 0, side - 1
            ).astype(np.int64)
            return i_lvl * side + q_lvl
        dist = np.abs(values[..., None] - self._points)
        return np.argmin(dist, axis=-1)

    def nearest_points(self, values: np.ndarray) -> np.ndarray:
        """Closest constellation points themselves (hard slicing)."""
        return self._points[self.nearest_indices(values)]

    def __len__(self) -> int:
        return self.order

    def __repr__(self) -> str:
        return f"Constellation({self._name}, order={self.order})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Constellation):
            return NotImplemented
        return (
            np.array_equal(self._points, other._points)
            and np.array_equal(self._labels, other._labels)
        )

    def __hash__(self) -> int:
        return hash((self._name, self.order))


def pam_component(constellation: Constellation) -> Constellation:
    """The per-dimension PAM alphabet of a square QAM constellation.

    Returns a :class:`Constellation` whose points are the (normalised)
    real levels with the same Gray labelling the QAM uses per dimension,
    so that ``qam_index = i_index * L + q_index`` holds between the two.
    This is the search alphabet of every real-lattice representation
    (see :mod:`repro.core.lattice`).
    """
    if not constellation.is_square_qam:
        raise ValueError("real decomposition requires a square QAM constellation")
    side = int(round(np.sqrt(constellation.order)))
    scale = 1.0 / np.sqrt(2.0 * (constellation.order - 1) / 3.0)
    levels = (np.arange(side) * 2 - (side - 1)) * scale
    bits_per_dim = side.bit_length() - 1
    gray = np.asarray(gray_code(np.arange(side)))
    labels = (
        (gray[:, None] >> np.arange(bits_per_dim - 1, -1, -1)) & 1
    ).astype(bool)
    return Constellation(
        f"{side}-PAM", levels.astype(complex), labels, normalize=False
    )
