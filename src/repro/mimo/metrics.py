"""Error-rate metrics: BER / SER / FER with streaming accumulation.

The Monte Carlo engine accumulates errors across frames through
:class:`ErrorCounter`; confidence intervals come in two flavours — the
normal approximation (cheap, fine at high error counts) and the exact
Clopper–Pearson interval (valid even at the zero-error points that
dominate high-SNR curves).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def bit_errors(sent: np.ndarray, decoded: np.ndarray) -> int:
    """Number of differing bits between two equal-length bit arrays."""
    sent = np.asarray(sent).astype(bool)
    decoded = np.asarray(decoded).astype(bool)
    if sent.shape != decoded.shape:
        raise ValueError(f"shape mismatch: {sent.shape} vs {decoded.shape}")
    return int(np.count_nonzero(sent ^ decoded))


def symbol_errors(sent: np.ndarray, decoded: np.ndarray) -> int:
    """Number of differing entries between two index/symbol arrays."""
    sent = np.asarray(sent)
    decoded = np.asarray(decoded)
    if sent.shape != decoded.shape:
        raise ValueError(f"shape mismatch: {sent.shape} vs {decoded.shape}")
    return int(np.count_nonzero(sent != decoded))


@dataclass
class ErrorCounter:
    """Streaming accumulator for bit/symbol/frame error rates."""

    bit_errors: int = 0
    bits: int = 0
    symbol_errors: int = 0
    symbols: int = 0
    frame_errors: int = 0
    frames: int = 0

    def update(
        self,
        sent_bits: np.ndarray,
        decoded_bits: np.ndarray,
        sent_indices: np.ndarray,
        decoded_indices: np.ndarray,
    ) -> None:
        """Fold one frame's transmit/decode pair into the counters."""
        be = bit_errors(sent_bits, decoded_bits)
        se = symbol_errors(sent_indices, decoded_indices)
        self.bit_errors += be
        self.bits += int(np.asarray(sent_bits).size)
        self.symbol_errors += se
        self.symbols += int(np.asarray(sent_indices).size)
        self.frame_errors += int(se > 0)
        self.frames += 1

    def merge(self, other: "ErrorCounter") -> "ErrorCounter":
        """Combine two counters (e.g. from parallel workers)."""
        return ErrorCounter(
            bit_errors=self.bit_errors + other.bit_errors,
            bits=self.bits + other.bits,
            symbol_errors=self.symbol_errors + other.symbol_errors,
            symbols=self.symbols + other.symbols,
            frame_errors=self.frame_errors + other.frame_errors,
            frames=self.frames + other.frames,
        )

    @property
    def ber(self) -> float:
        """Bit error rate (NaN before any bits are counted)."""
        return self.bit_errors / self.bits if self.bits else float("nan")

    @property
    def ser(self) -> float:
        """Symbol error rate (NaN before any symbols are counted)."""
        return self.symbol_errors / self.symbols if self.symbols else float("nan")

    @property
    def fer(self) -> float:
        """Frame (vector) error rate (NaN before any frames are counted)."""
        return self.frame_errors / self.frames if self.frames else float("nan")

    def ber_confidence(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation confidence interval on the BER."""
        if not self.bits:
            return (float("nan"), float("nan"))
        p = self.ber
        half = z * np.sqrt(max(p * (1.0 - p), 0.0) / self.bits)
        return (max(p - half, 0.0), min(p + half, 1.0))

    def ber_confidence_exact(self, confidence: float = 0.95) -> tuple[float, float]:
        """Exact (Clopper–Pearson) confidence interval on the BER.

        Valid at any error count — including the zero-error points that
        dominate high-SNR BER curves, where the normal approximation
        collapses to a meaningless (0, 0).
        """
        from scipy.stats import beta

        if not 0.0 < confidence < 1.0:
            raise ValueError(f"confidence must lie in (0, 1), got {confidence}")
        if not self.bits:
            return (float("nan"), float("nan"))
        alpha = 1.0 - confidence
        k, n = self.bit_errors, self.bits
        lo = 0.0 if k == 0 else float(beta.ppf(alpha / 2, k, n - k + 1))
        hi = 1.0 if k == n else float(beta.ppf(1 - alpha / 2, k + 1, n - k))
        return (lo, hi)
