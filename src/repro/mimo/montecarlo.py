"""Monte Carlo link-level simulation engine.

Reproduces the paper's methodology (section IV-A): "the testing data set
is randomly generated using Monte Carlo simulations to emulate the MIMO
system". For each SNR point the engine draws block-fading channel
realisations, runs a number of frames through each, and accumulates error
counters plus the detector's :class:`~repro.detectors.base.DecodeStats`
(the work traces later consumed by the FPGA/CPU/GPU time models).

Work is optionally sharded over processes (``workers > 1``, via
:mod:`repro.mimo.parallel_mc`): every channel block owns its own
``SeedSequence``-derived generator, so results are bit-identical to the
serial sweep for the same master seed regardless of worker count.
Frames within a block can additionally be decoded as one fused batch
(``batch_frames=True``) on detectors exposing ``decode_batch`` — also
bit-identical, just a different GEMM schedule.
"""

from __future__ import annotations

import logging
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.detectors.base import DecodeStats, Detector
from repro.mimo.metrics import ErrorCounter
from repro.mimo.system import MIMOSystem
from repro.obs.log import get_logger
from repro.obs.metrics import current_metrics
from repro.obs.tracer import current_tracer
from repro.util.timing import Timer
from repro.util.validation import check_positive_int

DetectorFactory = Callable[[], Detector]

_log = get_logger(__name__)


@dataclass
class SnrPoint:
    """Aggregated Monte Carlo outcome at one SNR."""

    snr_db: float
    errors: ErrorCounter
    frame_stats: list[DecodeStats] = field(default_factory=list)
    decode_time_s: float = 0.0
    frames: int = 0
    #: Pooled decode timer (one sample per timed decode section); merged
    #: across blocks — and across worker processes — via
    #: :meth:`~repro.util.timing.Timer.merge`, so ``timer.summarize()``
    #: percentiles reflect the whole point, not just the last block.
    timer: Timer = field(default_factory=Timer)

    @property
    def ber(self) -> float:
        """Bit error rate at this SNR."""
        return self.errors.ber

    @property
    def mean_decode_time_s(self) -> float:
        """Mean wall-clock decode time per frame (this host, not the FPGA)."""
        return self.decode_time_s / self.frames if self.frames else float("nan")

    def aggregate_stats(self) -> DecodeStats:
        """Sum of all per-frame search statistics at this point."""
        total = DecodeStats()
        for st in self.frame_stats:
            total = total.merge(st)
        return total

    def mean_nodes_expanded(self) -> float:
        """Average tree nodes expanded per frame (NaN for linear detectors)."""
        if not self.frame_stats:
            return float("nan")
        return float(
            np.mean([st.nodes_expanded for st in self.frame_stats])
        )


@dataclass
class SweepResult:
    """Result of an SNR sweep for one detector."""

    detector_name: str
    system_label: str
    points: list[SnrPoint]

    @property
    def snrs_db(self) -> np.ndarray:
        """SNR grid of the sweep."""
        return np.array([p.snr_db for p in self.points])

    @property
    def bers(self) -> np.ndarray:
        """BER at each SNR point."""
        return np.array([p.errors.ber for p in self.points])

    def point_at(self, snr_db: float) -> SnrPoint:
        """The :class:`SnrPoint` matching ``snr_db`` exactly."""
        for p in self.points:
            if p.snr_db == snr_db:
                return p
        raise KeyError(f"no point at {snr_db} dB in sweep {self.detector_name}")


def _run_block(
    system: MIMOSystem,
    factory: DetectorFactory,
    snr_db: float,
    frames: int,
    rng: np.random.Generator,
    keep_traces: bool,
    *,
    batch_frames: bool = False,
) -> tuple[ErrorCounter, list[DecodeStats], Timer]:
    """Run ``frames`` transmissions over one fresh channel realisation.

    With ``batch_frames`` the block's frames are drawn up front (the
    generator stream is identical — detectors consume no randomness) and
    decoded in one ``decode_batch`` call when the detector supports it,
    falling back to the per-frame loop otherwise. Decisions are
    bit-identical either way; only the wall-clock accounting granularity
    changes (one timer sample per block instead of per frame).
    """
    detector = factory()
    counter = ErrorCounter()
    stats: list[DecodeStats] = []
    tracer = current_tracer()
    timer = Timer()
    use_batch = batch_frames and hasattr(detector, "decode_batch")
    with tracer.span("mc.block", snr_db=snr_db, frames=frames):
        channel = system.channel_model.draw_channel(rng)
        detector.prepare(channel, noise_var=system.noise_var(snr_db))
        if use_batch:
            drawn = [
                system.random_frame(snr_db, rng, channel=channel)
                for _ in range(frames)
            ]
            received = np.stack([frame.received for frame in drawn])
            with timer:
                results = detector.decode_batch(received)
            frame_results = zip(drawn, results)
        else:
            def _detect_serially():
                for _ in range(frames):
                    frame = system.random_frame(snr_db, rng, channel=channel)
                    with tracer.span("mc.frame", snr_db=snr_db):
                        with timer:
                            result = detector.detect(frame.received)
                    yield frame, result

            frame_results = _detect_serially()
        for frame, result in frame_results:
            counter.update(
                frame.bits, result.bits, frame.symbol_indices, result.indices
            )
            if result.stats is not None:
                st = result.stats
                if not keep_traces:
                    st.batches = []
                stats.append(st)
    if tracer.enabled:
        tracer.count("mc.frames", frames)
        tracer.count("mc.bit_errors", counter.bit_errors)
    metrics = current_metrics()
    if metrics.enabled:
        _record_block_metrics(metrics, snr_db, frames, counter, stats, timer)
    return counter, stats, timer


def _record_block_metrics(
    metrics, snr_db, frames, counter, stats, timer
) -> None:
    """Fold one channel block's outcome into the labelled counters.

    Runs in whichever process decoded the block (the worker, in sharded
    mode — its registry drains back to the parent per block), and ticks
    the registry's live stream at block cadence.
    """
    snr = format(snr_db, "g")
    metrics.counter("mc.blocks").inc(1, snr=snr)
    metrics.counter("mc.frames").inc(frames, snr=snr)
    metrics.counter("mc.bits").inc(counter.bits, snr=snr)
    metrics.counter("mc.bit_errors").inc(counter.bit_errors, snr=snr)
    metrics.counter("mc.nodes_expanded").inc(
        sum(st.nodes_expanded for st in stats), snr=snr
    )
    metrics.counter("mc.decode_seconds").inc(timer.elapsed, snr=snr)
    metrics.tick()


class MonteCarloEngine:
    """Drives BER / workload sweeps over an SNR grid.

    Parameters
    ----------
    system:
        The MIMO link to simulate.
    channels:
        Block-fading channel realisations per SNR point.
    frames_per_channel:
        Received vectors decoded per channel realisation.
    seed:
        Root seed; all randomness derives from it reproducibly.
    target_bit_errors:
        Optional early-stop: once a point has accumulated this many bit
        errors *and* at least one channel block has run, remaining blocks
        for that point are skipped (serial mode only; ignored — with a
        warning — when blocks are sharded over workers).
    keep_traces:
        Keep per-expansion :class:`BatchEvent` traces in the stats (needed
        by the FPGA pipeline simulator; disable to save memory on very
        long BER runs).
    heartbeat_every:
        Emit a live progress heartbeat every N channel blocks: an INFO
        log line and, under an enabled tracer, an ``mc.heartbeat``
        instant event carrying frames done, running BER, nodes/s and the
        point's ETA. ``0`` disables heartbeats. With ``workers > 1``
        the workers report per-block progress over a queue and the
        parent emits the same events (plus a ``workers`` field).
    workers:
        Default process count for :meth:`run`. ``1`` decodes serially in
        this process; ``N > 1`` shards channel blocks over a process
        pool (:mod:`repro.mimo.parallel_mc`) with bit-identical results
        for the same seed.
    batch_frames:
        Decode each block's frames as one fused batch via the detector's
        ``decode_batch`` (bit-identical; falls back to the per-frame
        loop for detectors without one).
    chunk_blocks:
        Blocks per shard when sharding (``None``: auto, see
        :func:`repro.mimo.parallel_mc.plan_chunks`).
    crash_dir:
        Directory where crashing workers write tracebacks before the
        error propagates (default: the ``REPRO_MC_CRASH_DIR``
        environment variable, if set).
    """

    def __init__(
        self,
        system: MIMOSystem,
        *,
        channels: int = 10,
        frames_per_channel: int = 10,
        seed: int | None = 0,
        target_bit_errors: int | None = None,
        keep_traces: bool = True,
        heartbeat_every: int = 1,
        workers: int = 1,
        batch_frames: bool = False,
        chunk_blocks: int | None = None,
        crash_dir: str | Path | None = None,
    ) -> None:
        self.system = system
        self.channels = check_positive_int(channels, "channels")
        self.frames_per_channel = check_positive_int(
            frames_per_channel, "frames_per_channel"
        )
        self.seed = seed
        self.target_bit_errors = target_bit_errors
        self.keep_traces = keep_traces
        if heartbeat_every < 0:
            raise ValueError("heartbeat_every must be >= 0")
        self.heartbeat_every = heartbeat_every
        self.workers = check_positive_int(workers, "workers")
        self.batch_frames = batch_frames
        self.chunk_blocks = (
            None
            if chunk_blocks is None
            else check_positive_int(chunk_blocks, "chunk_blocks")
        )
        if crash_dir is None:
            crash_dir = os.environ.get("REPRO_MC_CRASH_DIR") or None
        self.crash_dir = crash_dir

    def _heartbeat(
        self,
        tracer,
        point: SnrPoint,
        *,
        blocks_done: int,
        wall_started: float,
    ) -> None:
        """One live progress event for a long-running SNR point.

        Cheap by construction: runs once per channel *block* (hundreds
        of decodes), and skips all arithmetic when neither the logging
        channel nor the tracer would observe it.
        """
        if not tracer.enabled and not _log.isEnabledFor(logging.INFO):
            return
        elapsed = time.perf_counter() - wall_started
        remaining = self.channels - blocks_done
        eta_s = elapsed / blocks_done * remaining if blocks_done else float("nan")
        nodes = sum(st.nodes_expanded for st in point.frame_stats)
        nodes_per_s = nodes / point.decode_time_s if point.decode_time_s else 0.0
        _log.info(
            "mc heartbeat %.1f dB: block %d/%d, %d frames, ber=%.3g, "
            "%.0f nodes/s, eta %.1f s",
            point.snr_db,
            blocks_done,
            self.channels,
            point.frames,
            point.ber,
            nodes_per_s,
            eta_s,
        )
        tracer.instant(
            "mc.heartbeat",
            snr_db=point.snr_db,
            blocks_done=blocks_done,
            blocks_total=self.channels,
            frames=point.frames,
            ber=point.ber,
            nodes_per_s=nodes_per_s,
            eta_s=eta_s,
        )

    def run(
        self,
        detector_factory: DetectorFactory,
        snrs_db: Sequence[float],
        *,
        n_workers: int | None = None,
        detector_name: str | None = None,
    ) -> SweepResult:
        """Sweep the SNR grid and return aggregated results.

        ``detector_factory`` is called once per channel block (so each
        block gets a fresh detector — important for process workers); it
        must be picklable when work is sharded over workers.
        ``n_workers`` overrides the engine's ``workers`` default; any
        value above 1 delegates to
        :func:`repro.mimo.parallel_mc.run_sweep_sharded`, which is
        bit-identical to the serial path for the same seed.
        """
        snrs = [float(s) for s in snrs_db]
        if not snrs:
            raise ValueError("snrs_db must be non-empty")
        if n_workers is None:
            n_workers = self.workers
        n_workers = check_positive_int(n_workers, "n_workers")
        if n_workers > 1:
            # NOTE: contextvars don't cross process boundaries, so worker
            # blocks run untraced; the parent still emits mc.point spans
            # and queue-fed mc.heartbeat instants (see parallel_mc).
            from repro.mimo.parallel_mc import run_sweep_sharded

            return run_sweep_sharded(
                self,
                detector_factory,
                snrs,
                workers=n_workers,
                detector_name=detector_name,
            )
        tracer = current_tracer()
        seqs = np.random.SeedSequence(self.seed).spawn(len(snrs))
        points: list[SnrPoint] = []
        for snr_db, seq in zip(snrs, seqs):
            block_seqs = seq.spawn(self.channels)
            point = SnrPoint(snr_db=snr_db, errors=ErrorCounter())
            wall_started = time.perf_counter()
            with tracer.span("mc.point", snr_db=snr_db):
                for block_index, bseq in enumerate(block_seqs, start=1):
                    rng = np.random.default_rng(bseq)
                    counter, stats, timer = _run_block(
                        self.system,
                        detector_factory,
                        snr_db,
                        self.frames_per_channel,
                        rng,
                        self.keep_traces,
                        batch_frames=self.batch_frames,
                    )
                    point.errors = point.errors.merge(counter)
                    point.frame_stats.extend(stats)
                    point.timer = point.timer.merge(timer)
                    point.decode_time_s = point.timer.elapsed
                    point.frames += self.frames_per_channel
                    if (
                        self.heartbeat_every
                        and block_index % self.heartbeat_every == 0
                    ):
                        self._heartbeat(
                            tracer,
                            point,
                            blocks_done=block_index,
                            wall_started=wall_started,
                        )
                    if (
                        self.target_bit_errors is not None
                        and point.errors.bit_errors >= self.target_bit_errors
                    ):
                        break
            _log.info(
                "mc point %.1f dB: ber=%.3g over %d frames (%.3f s decode)",
                snr_db,
                point.ber,
                point.frames,
                point.decode_time_s,
            )
            points.append(point)
        # End-of-sweep flush so the live stream always carries the final
        # totals even when the last block landed inside the throttle
        # interval (no-op without an attached stream).
        current_metrics().tick(force=True)
        probe = detector_factory()
        return SweepResult(
            detector_name=detector_name or probe.name,
            system_label=repr(self.system),
            points=points,
        )
