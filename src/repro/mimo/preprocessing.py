"""Channel preprocessing: QR decomposition and friends (paper eq. 4).

The sphere decoder works on the triangularised system
``||ybar - R s||^2`` where ``H = Q R`` and ``ybar = Q^H y``. This module
provides:

* :func:`qr_decompose` — deterministic thin QR with a positive real
  diagonal on ``R`` (the sign convention matters for reproducibility and
  keeps partial-distance bookkeeping stable);
* :func:`sorted_qr` — SQRD column ordering (weakest stream detected last),
  which tightens pruning for all tree-search detectors;
* :func:`effective_receive` — ``ybar = Q^H y``;
* :func:`real_decomposition` — the equivalent real-valued ``2N x 2M``
  lattice formulation used by PAM-domain decoders and some baselines,
  in either the classic stacked layout or the reordered (interleaved)
  layout of Azzam & Ayanoglu;
* :func:`real_layout_permutation` — the column order a real layout
  applies to the stacked decomposition (the detector layer uses it to
  fold PAM decisions back to QAM indices).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_matrix, check_vector


@dataclass(frozen=True)
class QRResult:
    """Triangularised channel.

    Attributes
    ----------
    q:
        ``(n_rx, n_tx)`` thin orthonormal factor.
    r:
        ``(n_tx, n_tx)`` upper-triangular factor with real positive
        diagonal.
    permutation:
        Column order applied to ``H`` before factorisation: column ``j``
        of the factorised matrix is column ``permutation[j]`` of the
        original ``H``. Identity for plain QR.
    """

    q: np.ndarray
    r: np.ndarray
    permutation: np.ndarray

    def unpermute(self, symbols: np.ndarray) -> np.ndarray:
        """Reorder a decoded vector back to the original antenna order."""
        out = np.empty_like(symbols)
        out[self.permutation] = symbols
        return out

    def permute(self, symbols: np.ndarray) -> np.ndarray:
        """Apply the detection ordering to an original-order vector."""
        return np.asarray(symbols)[self.permutation]


def _fix_diagonal_signs(q: np.ndarray, r: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Rescale so diag(R) is real and positive (unique QR for full rank)."""
    diag = np.diagonal(r).copy()
    # Phase of each diagonal entry; zero diagonals (rank deficiency) keep
    # phase 1 so we do not divide by zero.
    phase = np.where(np.abs(diag) > 0, diag / np.abs(np.where(diag == 0, 1, diag)), 1.0)
    r = r * np.conj(phase)[:, None]
    q = q * phase[None, :]
    return q, r


def qr_decompose(channel: np.ndarray) -> QRResult:
    """Thin QR of the channel with deterministic sign convention.

    Requires ``n_rx >= n_tx`` (overdetermined or square systems, as in
    the paper's ``N x M`` model with ``N >= M``).
    """
    channel = check_matrix(channel, "channel")
    n_rx, n_tx = channel.shape
    if n_rx < n_tx:
        raise ValueError(
            f"QR-based detection needs n_rx >= n_tx, got {n_rx} < {n_tx}"
        )
    q, r = np.linalg.qr(channel, mode="reduced")
    q, r = _fix_diagonal_signs(q, r)
    return QRResult(q=q, r=r, permutation=np.arange(n_tx))


def sorted_qr(channel: np.ndarray) -> QRResult:
    """Sorted QR decomposition (SQRD, Wuebben et al.).

    Greedy modified Gram-Schmidt that, at each step, picks the remaining
    column with the smallest residual norm. The effect is that the
    *largest* residual norms end up in the last rows of ``R`` — i.e. the
    most reliable streams are detected first at the top of the search
    tree, which makes early radius updates much tighter.
    """
    channel = check_matrix(channel, "channel")
    n_rx, n_tx = channel.shape
    if n_rx < n_tx:
        raise ValueError(
            f"QR-based detection needs n_rx >= n_tx, got {n_rx} < {n_tx}"
        )
    a = channel.astype(np.complex128, copy=True)
    q = np.zeros((n_rx, n_tx), dtype=np.complex128)
    r = np.zeros((n_tx, n_tx), dtype=np.complex128)
    perm = np.arange(n_tx)
    norms = np.sum(np.abs(a) ** 2, axis=0).astype(float)
    for i in range(n_tx):
        # Choose the weakest remaining column -> it is detected *last*
        # (deepest tree level handles the strongest stream).
        k = i + int(np.argmin(norms[i:]))
        if k != i:
            a[:, [i, k]] = a[:, [k, i]]
            r[:, [i, k]] = r[:, [k, i]]
            perm[[i, k]] = perm[[k, i]]
            norms[[i, k]] = norms[[k, i]]
        r[i, i] = np.sqrt(max(norms[i], 0.0))
        if r[i, i] == 0:
            raise np.linalg.LinAlgError("channel matrix is rank deficient")
        q[:, i] = a[:, i] / r[i, i]
        if i + 1 < n_tx:
            r[i, i + 1 :] = np.conj(q[:, i]) @ a[:, i + 1 :]
            a[:, i + 1 :] -= np.outer(q[:, i], r[i, i + 1 :])
            norms[i + 1 :] -= np.abs(r[i, i + 1 :]) ** 2
            np.clip(norms[i + 1 :], 0.0, None, out=norms[i + 1 :])
    return QRResult(q=q, r=r, permutation=perm)


def effective_receive(qr: QRResult, received: np.ndarray) -> np.ndarray:
    """``ybar = Q^H y`` — the rotated receive vector of eq. (4)."""
    received = check_vector(received, "received", length=qr.q.shape[0])
    return np.conj(qr.q.T) @ received


#: Column layouts of the real decomposition. ``"stacked"`` is the
#: textbook ``[Re s; Im s]`` block order; ``"interleaved"`` is the
#: reordered lattice of Azzam & Ayanoglu with columns
#: ``[Re s_1, Im s_1, Re s_2, Im s_2, ...]`` so the I and Q of one
#: symbol occupy *adjacent* tree levels.
REAL_LAYOUTS = ("stacked", "interleaved")


def real_layout_permutation(n_tx: int, layout: str = "stacked") -> np.ndarray:
    """Column permutation a layout applies to the stacked decomposition.

    ``perm[j]`` is the stacked-layout column (``k`` = Re of antenna
    ``k``, ``n_tx + k`` = Im of antenna ``k``) that lands at column
    ``j`` of the laid-out matrix. Identity for ``"stacked"``.
    """
    if layout not in REAL_LAYOUTS:
        raise ValueError(
            f"unknown real layout {layout!r} (known: {', '.join(REAL_LAYOUTS)})"
        )
    if layout == "stacked":
        return np.arange(2 * n_tx)
    perm = np.empty(2 * n_tx, dtype=np.int64)
    perm[0::2] = np.arange(n_tx)
    perm[1::2] = n_tx + np.arange(n_tx)
    return perm


def real_decomposition(
    channel: np.ndarray, received: np.ndarray, *, layout: str = "stacked"
) -> tuple[np.ndarray, np.ndarray]:
    """Equivalent real-valued system.

    Maps ``y = H s + n`` over C^(N x M) to a real system of size
    ``2N x 2M`` with the standard block structure::

        [Re y]   [Re H  -Im H] [Re s]
        [Im y] = [Im H   Re H] [Im s] + noise

    ``layout="interleaved"`` additionally reorders the columns to the
    Azzam & Ayanoglu form (``Re s_1, Im s_1, Re s_2, Im s_2, ...``); the
    rows — and therefore ``y_real`` — are unchanged. With that ordering
    the last two tree levels belong to the *same* complex symbol, and so
    do every subsequent pair, which is what lets a hardware enumerator
    decide I and Q together and halve the effective tree depth.

    Returns ``(H_real, y_real)``.
    """
    channel = check_matrix(channel, "channel")
    received = check_vector(received, "received", length=channel.shape[0])
    h_re, h_im = channel.real, channel.imag
    top = np.concatenate([h_re, -h_im], axis=1)
    bottom = np.concatenate([h_im, h_re], axis=1)
    h_real = np.concatenate([top, bottom], axis=0)
    y_real = np.concatenate([received.real, received.imag])
    if layout != "stacked":
        perm = real_layout_permutation(channel.shape[1], layout)
        h_real = h_real[:, perm]
    return h_real, y_real
