"""Bit <-> symbol conversion for MIMO transmit vectors."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mimo.constellation import Constellation
from repro.util.rng import as_generator
from repro.util.validation import check_positive_int


@dataclass(frozen=True)
class Modulator:
    """Maps information bits onto complex transmit symbol vectors.

    One instance serves one constellation; the number of spatial streams
    is passed per call so a single modulator can be shared across MIMO
    configurations.
    """

    constellation: Constellation

    def bits_to_symbols(self, bits: np.ndarray) -> np.ndarray:
        """Map a flat bit array onto complex symbols (one per group)."""
        indices = self.constellation.bits_to_indices(bits)
        return self.constellation.map_indices(indices)

    def random_indices(self, n_streams: int, rng: object = None) -> np.ndarray:
        """Uniformly random point indices for ``n_streams`` transmitters."""
        n_streams = check_positive_int(n_streams, "n_streams")
        gen = as_generator(rng)
        return gen.integers(0, self.constellation.order, size=n_streams)

    def random_bits(self, n_streams: int, rng: object = None) -> np.ndarray:
        """Uniformly random bits for ``n_streams`` transmitters."""
        n_streams = check_positive_int(n_streams, "n_streams")
        gen = as_generator(rng)
        return gen.integers(
            0, 2, size=n_streams * self.constellation.bits_per_symbol
        ).astype(bool)


@dataclass(frozen=True)
class Demodulator:
    """Hard demodulation: received symbol estimates -> bits."""

    constellation: Constellation

    def symbols_to_bits(self, symbols: np.ndarray) -> np.ndarray:
        """Slice noisy symbols to the nearest points and emit their bits."""
        indices = self.constellation.nearest_indices(symbols)
        return self.constellation.indices_to_bits(indices)

    def indices_to_bits(self, indices: np.ndarray) -> np.ndarray:
        """Bits for already-decided point indices (no slicing)."""
        return self.constellation.indices_to_bits(indices)
