"""Process-sharded Monte Carlo sweeps (frame-parallel BER simulation).

The serial :class:`~repro.mimo.montecarlo.MonteCarloEngine` decodes
channel blocks one after another. This module shards those blocks across
a :class:`~concurrent.futures.ProcessPoolExecutor` while keeping the
result **bit-identical** to the serial sweep for the same master seed:

* Seeding is reproduced exactly: the same
  ``SeedSequence(seed).spawn(len(snrs))`` / ``seq.spawn(channels)``
  tree the serial loop walks is built up front, and each shard ships the
  ``SeedSequence`` objects of its contiguous block range. Every block
  therefore draws from the identical generator stream no matter which
  worker runs it.
* Shards are contiguous ``[start, stop)`` block ranges dispatched in
  chunks (:func:`plan_chunks`), and outcomes are merged in ascending
  ``shard_id`` order — so concatenated per-frame stats, radius traces
  and error counters reproduce the serial frame order exactly.
  ``tests/test_parallel_mc.py`` enforces the equivalence.
* Workers run untraced (contextvars do not cross processes); instead
  they report per-block :class:`BlockProgress` messages over a manager
  queue and the parent emits the same ``mc.heartbeat`` instants (plus a
  ``workers`` field) the serial engine would, honouring
  ``heartbeat_every``.

Failure forensics: a worker that raises writes a full traceback to
``crash_dir`` (``REPRO_MC_CRASH_DIR`` or the engine's ``crash_dir``)
before re-raising, so CI can upload crash logs as artifacts even though
the parent only sees the pickled exception.
"""

from __future__ import annotations

import logging
import math
import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from multiprocessing import Manager
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.detectors.base import DecodeStats, Detector
from repro.mimo.metrics import ErrorCounter
from repro.mimo.system import MIMOSystem
from repro.obs.log import get_logger
from repro.obs.tracer import current_tracer
from repro.util.timing import Timer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.mimo.montecarlo import MonteCarloEngine, SweepResult

DetectorFactory = Callable[[], Detector]

_log = get_logger(__name__)

#: Default shards per worker: small enough to amortise process start-up,
#: large enough that a slow shard cannot serialise the tail of the sweep.
CHUNKS_PER_WORKER = 4


def plan_chunks(
    n_blocks: int,
    workers: int,
    chunk_blocks: int | None = None,
) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` block ranges for one SNR point.

    Deterministic in its inputs (no dependence on worker timing): the
    same ``(n_blocks, workers, chunk_blocks)`` always yields the same
    plan, which is what makes shard merging reproducible. When
    ``chunk_blocks`` is ``None`` the chunk size targets
    ``workers * CHUNKS_PER_WORKER`` shards per point.
    """
    if n_blocks <= 0:
        raise ValueError(f"n_blocks must be positive, got {n_blocks}")
    if workers <= 0:
        raise ValueError(f"workers must be positive, got {workers}")
    if chunk_blocks is None:
        chunk_blocks = max(1, math.ceil(n_blocks / (workers * CHUNKS_PER_WORKER)))
    elif chunk_blocks <= 0:
        raise ValueError(f"chunk_blocks must be positive, got {chunk_blocks}")
    return [
        (start, min(start + chunk_blocks, n_blocks))
        for start in range(0, n_blocks, chunk_blocks)
    ]


@dataclass(frozen=True)
class ShardSpec:
    """One contiguous run of channel blocks belonging to one SNR point."""

    shard_id: int
    point_index: int
    snr_db: float
    block_start: int
    block_stop: int
    #: The exact per-block ``SeedSequence`` objects the serial loop would
    #: have used for blocks ``[block_start, block_stop)``.
    seed_seqs: tuple[np.random.SeedSequence, ...]

    @property
    def n_blocks(self) -> int:
        return self.block_stop - self.block_start


@dataclass(frozen=True)
class BlockProgress:
    """Per-block progress message a worker posts to the parent's queue."""

    point_index: int
    snr_db: float
    shard_id: int
    frames: int
    bit_errors: int
    bits: int
    nodes_expanded: int
    decode_time_s: float


@dataclass
class ShardOutcome:
    """Aggregated result of one shard, merged by the parent in id order."""

    shard_id: int
    point_index: int
    counter: ErrorCounter
    frame_stats: list[DecodeStats] = field(default_factory=list)
    timer: Timer = field(default_factory=Timer)
    frames: int = 0


@dataclass(frozen=True)
class _ShardConfig:
    """Picklable, shard-invariant worker configuration."""

    system: MIMOSystem
    factory: DetectorFactory
    frames_per_channel: int
    keep_traces: bool
    batch_frames: bool
    crash_dir: str | None


def _write_crash_log(crash_dir: str, spec: ShardSpec, exc: BaseException) -> None:
    try:
        directory = Path(crash_dir)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"shard-{spec.shard_id:04d}.log"
        path.write_text(
            f"shard {spec.shard_id} (snr {spec.snr_db} dB, blocks "
            f"[{spec.block_start}, {spec.block_stop})) failed in pid "
            f"{os.getpid()}\n\n"
            + "".join(traceback.format_exception(exc)),
            encoding="utf-8",
        )
    except OSError:  # pragma: no cover - forensics must never mask the error
        pass


def _run_shard(spec: ShardSpec, config: _ShardConfig, queue) -> ShardOutcome:
    """Worker entry point: run one shard's blocks and report progress.

    Runs in a separate process — untraced (the ambient tracer does not
    cross the boundary); progress flows back through ``queue`` instead.
    Any exception is written to ``config.crash_dir`` before propagating.
    """
    from repro.mimo.montecarlo import _run_block

    try:
        outcome = ShardOutcome(
            shard_id=spec.shard_id,
            point_index=spec.point_index,
            counter=ErrorCounter(),
        )
        for seed_seq in spec.seed_seqs:
            rng = np.random.default_rng(seed_seq)
            counter, stats, timer = _run_block(
                config.system,
                config.factory,
                spec.snr_db,
                config.frames_per_channel,
                rng,
                config.keep_traces,
                batch_frames=config.batch_frames,
            )
            outcome.counter = outcome.counter.merge(counter)
            outcome.frame_stats.extend(stats)
            outcome.timer = outcome.timer.merge(timer)
            outcome.frames += config.frames_per_channel
            if queue is not None:
                queue.put(
                    BlockProgress(
                        point_index=spec.point_index,
                        snr_db=spec.snr_db,
                        shard_id=spec.shard_id,
                        frames=config.frames_per_channel,
                        bit_errors=counter.bit_errors,
                        bits=counter.bits,
                        nodes_expanded=sum(
                            st.nodes_expanded for st in stats
                        ),
                        decode_time_s=timer.elapsed,
                    )
                )
        return outcome
    except BaseException as exc:
        if config.crash_dir:
            _write_crash_log(config.crash_dir, spec, exc)
        raise


@dataclass
class _PointProgress:
    """Parent-side live accumulator for one SNR point's heartbeats."""

    snr_db: float
    blocks_total: int
    blocks_done: int = 0
    frames: int = 0
    bit_errors: int = 0
    bits: int = 0
    nodes_expanded: int = 0
    decode_time_s: float = 0.0

    @property
    def ber(self) -> float:
        return self.bit_errors / self.bits if self.bits else float("nan")


def _emit_heartbeat(
    tracer,
    progress: _PointProgress,
    *,
    workers: int,
    wall_started: float,
) -> None:
    """Parent-side ``mc.heartbeat`` with the serial engine's payload.

    Same keys as :meth:`MonteCarloEngine._heartbeat` plus ``workers``;
    the ETA divides wall time since the pool started by completed blocks,
    so concurrent points share the clock (documented in
    ``docs/observability.md``).
    """
    if not tracer.enabled and not _log.isEnabledFor(logging.INFO):
        return
    elapsed = time.perf_counter() - wall_started
    remaining = progress.blocks_total - progress.blocks_done
    eta_s = (
        elapsed / progress.blocks_done * remaining
        if progress.blocks_done
        else float("nan")
    )
    nodes_per_s = (
        progress.nodes_expanded / progress.decode_time_s
        if progress.decode_time_s
        else 0.0
    )
    _log.info(
        "mc heartbeat %.1f dB: block %d/%d, %d frames, ber=%.3g, "
        "%.0f nodes/s, eta %.1f s (%d workers)",
        progress.snr_db,
        progress.blocks_done,
        progress.blocks_total,
        progress.frames,
        progress.ber,
        nodes_per_s,
        eta_s,
        workers,
    )
    tracer.instant(
        "mc.heartbeat",
        snr_db=progress.snr_db,
        blocks_done=progress.blocks_done,
        blocks_total=progress.blocks_total,
        frames=progress.frames,
        ber=progress.ber,
        nodes_per_s=nodes_per_s,
        eta_s=eta_s,
        workers=workers,
    )


def plan_shards(
    snrs: Sequence[float],
    seed: int | None,
    channels: int,
    *,
    workers: int,
    chunk_blocks: int | None = None,
) -> list[ShardSpec]:
    """Build the full shard plan for a sweep, point-major in block order.

    Walks exactly the seeding tree the serial engine walks —
    ``SeedSequence(seed).spawn(len(snrs))`` then ``seq.spawn(channels)``
    per point — so each shard carries the serial per-block streams.
    """
    seqs = np.random.SeedSequence(seed).spawn(len(snrs))
    shards: list[ShardSpec] = []
    for point_index, (snr_db, seq) in enumerate(zip(snrs, seqs)):
        block_seqs = seq.spawn(channels)
        for start, stop in plan_chunks(channels, workers, chunk_blocks):
            shards.append(
                ShardSpec(
                    shard_id=len(shards),
                    point_index=point_index,
                    snr_db=float(snr_db),
                    block_start=start,
                    block_stop=stop,
                    seed_seqs=tuple(block_seqs[start:stop]),
                )
            )
    return shards


def run_sweep_sharded(
    engine: "MonteCarloEngine",
    detector_factory: DetectorFactory,
    snrs: Sequence[float],
    *,
    workers: int,
    detector_name: str | None = None,
) -> "SweepResult":
    """Run the engine's sweep with blocks sharded over a process pool.

    Bit-identical to ``engine.run(..., n_workers=1)`` in every decode
    outcome: BERs, per-frame stats (except ``wall_time_s``), node
    counts and traces. ``detector_factory`` must be picklable.
    ``target_bit_errors`` early-stopping is a serial-only feature and is
    ignored here (all planned blocks run).
    """
    from repro.mimo.montecarlo import SnrPoint, SweepResult

    snr_list = [float(s) for s in snrs]
    if not snr_list:
        raise ValueError("snrs must be non-empty")
    if engine.target_bit_errors is not None:
        _log.warning(
            "target_bit_errors is ignored with workers=%d "
            "(early stop is serial-only)",
            workers,
        )
    tracer = current_tracer()
    shards = plan_shards(
        snr_list,
        engine.seed,
        engine.channels,
        workers=workers,
        chunk_blocks=engine.chunk_blocks,
    )
    config = _ShardConfig(
        system=engine.system,
        factory=detector_factory,
        frames_per_channel=engine.frames_per_channel,
        keep_traces=engine.keep_traces,
        batch_frames=engine.batch_frames,
        crash_dir=str(engine.crash_dir) if engine.crash_dir else None,
    )
    progress = {
        i: _PointProgress(snr_db=snr_db, blocks_total=engine.channels)
        for i, snr_db in enumerate(snr_list)
    }
    outcomes: dict[int, ShardOutcome] = {}
    wall_started = time.perf_counter()

    def drain(queue) -> None:
        while True:
            try:
                msg: BlockProgress = queue.get_nowait()
            except Exception:  # queue.Empty via the manager proxy
                return
            p = progress[msg.point_index]
            p.blocks_done += 1
            p.frames += msg.frames
            p.bit_errors += msg.bit_errors
            p.bits += msg.bits
            p.nodes_expanded += msg.nodes_expanded
            p.decode_time_s += msg.decode_time_s
            if (
                engine.heartbeat_every
                and p.blocks_done % engine.heartbeat_every == 0
            ):
                _emit_heartbeat(
                    tracer, p, workers=workers, wall_started=wall_started
                )

    with Manager() as manager:
        queue = manager.Queue()
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_run_shard, spec, config, queue): spec
                for spec in shards
            }
            pending = set(futures)
            while pending:
                done, pending = wait(
                    pending, timeout=0.1, return_when=FIRST_COMPLETED
                )
                drain(queue)
                for future in done:
                    outcome = future.result()  # re-raises worker crashes
                    outcomes[outcome.shard_id] = outcome
        drain(queue)

    points: list[SnrPoint] = []
    for point_index, snr_db in enumerate(snr_list):
        with tracer.span(
            "mc.point", snr_db=snr_db, workers=workers, sharded=True
        ):
            point = SnrPoint(snr_db=snr_db, errors=ErrorCounter())
            for shard_id in sorted(outcomes):
                outcome = outcomes[shard_id]
                if outcome.point_index != point_index:
                    continue
                point.errors = point.errors.merge(outcome.counter)
                point.frame_stats.extend(outcome.frame_stats)
                point.timer = point.timer.merge(outcome.timer)
                point.frames += outcome.frames
            point.decode_time_s = point.timer.elapsed
        _log.info(
            "mc point %.1f dB: ber=%.3g over %d frames (%.3f s decode, "
            "%d workers)",
            snr_db,
            point.ber,
            point.frames,
            point.decode_time_s,
            workers,
        )
        points.append(point)
    probe = detector_factory()
    return SweepResult(
        detector_name=detector_name or probe.name,
        system_label=repr(engine.system),
        points=points,
    )
