"""Process-sharded Monte Carlo sweeps (frame-parallel BER simulation).

The serial :class:`~repro.mimo.montecarlo.MonteCarloEngine` decodes
channel blocks one after another. This module shards those blocks across
a :class:`~concurrent.futures.ProcessPoolExecutor` while keeping the
result **bit-identical** to the serial sweep for the same master seed:

* Seeding is reproduced exactly: the same
  ``SeedSequence(seed).spawn(len(snrs))`` / ``seq.spawn(channels)``
  tree the serial loop walks is built up front, and each shard ships the
  ``SeedSequence`` objects of its contiguous block range. Every block
  therefore draws from the identical generator stream no matter which
  worker runs it.
* Shards are contiguous ``[start, stop)`` block ranges dispatched in
  chunks (:func:`plan_chunks`), and outcomes are merged in ascending
  ``shard_id`` order — so concatenated per-frame stats, radius traces
  and error counters reproduce the serial frame order exactly.
  ``tests/test_parallel_mc.py`` enforces the equivalence.
* Telemetry crosses the process boundary explicitly: the parent's
  observability state rides into each shard as a
  :class:`~repro.obs.tracer.TraceContext` (contextvars themselves do
  not cross processes). Workers rebuild a tracer against the parent's
  clock epoch — stamping events with their OS pid — and a metrics
  registry, and flush both through the same manager queue as
  :class:`ShardTelemetry` messages after every block *and* from the
  crash path, so a dying shard still ships its partial trace. The
  parent absorbs them live: the merged Chrome trace renders one lane
  per worker process, aligned with the parent's ``mc.heartbeat``
  instants, and the parent registry's totals (and its attached metrics
  stream) advance block by block. Workers also report per-block
  :class:`BlockProgress`, from which the parent emits ``mc.heartbeat``
  instants carrying the sourcing shard id and a per-shard-aware ETA
  (the max of pool-throughput extrapolation and the slowest started
  shard's own pace), honouring ``heartbeat_every``.

Failure forensics: a worker that raises writes a full traceback to
``crash_dir`` (``REPRO_MC_CRASH_DIR`` or the engine's ``crash_dir``)
before re-raising, so CI can upload crash logs as artifacts even though
the parent only sees the pickled exception.
"""

from __future__ import annotations

import logging
import math
import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field, replace
from multiprocessing import Manager
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

import numpy as np

from repro.detectors.base import DecodeStats, Detector
from repro.mimo.metrics import ErrorCounter
from repro.mimo.system import MIMOSystem
from repro.obs.log import get_logger
from repro.obs.metrics import (
    MetricsRegistry,
    MetricsSnapshot,
    current_metrics,
    reset_metrics,
    set_metrics,
)
from repro.obs.tracer import (
    TraceContext,
    TraceEvent,
    Tracer,
    current_tracer,
    reset_tracer,
    set_tracer,
)
from repro.util.timing import Timer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.mimo.montecarlo import MonteCarloEngine, SweepResult

DetectorFactory = Callable[[], Detector]

_log = get_logger(__name__)

#: Default shards per worker: small enough to amortise process start-up,
#: large enough that a slow shard cannot serialise the tail of the sweep.
CHUNKS_PER_WORKER = 4


def plan_chunks(
    n_blocks: int,
    workers: int,
    chunk_blocks: int | None = None,
) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` block ranges for one SNR point.

    Deterministic in its inputs (no dependence on worker timing): the
    same ``(n_blocks, workers, chunk_blocks)`` always yields the same
    plan, which is what makes shard merging reproducible. When
    ``chunk_blocks`` is ``None`` the chunk size targets
    ``workers * CHUNKS_PER_WORKER`` shards per point.
    """
    if n_blocks <= 0:
        raise ValueError(f"n_blocks must be positive, got {n_blocks}")
    if workers <= 0:
        raise ValueError(f"workers must be positive, got {workers}")
    if chunk_blocks is None:
        chunk_blocks = max(1, math.ceil(n_blocks / (workers * CHUNKS_PER_WORKER)))
    elif chunk_blocks <= 0:
        raise ValueError(f"chunk_blocks must be positive, got {chunk_blocks}")
    return [
        (start, min(start + chunk_blocks, n_blocks))
        for start in range(0, n_blocks, chunk_blocks)
    ]


@dataclass(frozen=True)
class ShardSpec:
    """One contiguous run of channel blocks belonging to one SNR point."""

    shard_id: int
    point_index: int
    snr_db: float
    block_start: int
    block_stop: int
    #: The exact per-block ``SeedSequence`` objects the serial loop would
    #: have used for blocks ``[block_start, block_stop)``.
    seed_seqs: tuple[np.random.SeedSequence, ...]
    #: Parent observability state (trailing, defaulted: existing shard
    #: construction and pickles stay valid). ``None`` = unobserved.
    telemetry: TraceContext | None = None

    @property
    def n_blocks(self) -> int:
        return self.block_stop - self.block_start


@dataclass(frozen=True)
class ShardTelemetry:
    """Telemetry flush a worker posts alongside its progress messages.

    Carries the worker tracer's drained events (already stamped with the
    worker pid, timed against the parent's epoch) and counter deltas,
    plus the worker registry's drained metrics delta. Separate from
    :class:`BlockProgress` so unobserved sweeps ship zero extra bytes.
    """

    shard_id: int
    pid: int
    events: tuple[TraceEvent, ...] = ()
    counters: Mapping[str, float] | None = None
    metrics: MetricsSnapshot | None = None


@dataclass(frozen=True)
class BlockProgress:
    """Per-block progress message a worker posts to the parent's queue."""

    point_index: int
    snr_db: float
    shard_id: int
    frames: int
    bit_errors: int
    bits: int
    nodes_expanded: int
    decode_time_s: float


@dataclass
class ShardOutcome:
    """Aggregated result of one shard, merged by the parent in id order."""

    shard_id: int
    point_index: int
    counter: ErrorCounter
    frame_stats: list[DecodeStats] = field(default_factory=list)
    timer: Timer = field(default_factory=Timer)
    frames: int = 0


@dataclass(frozen=True)
class _ShardConfig:
    """Picklable, shard-invariant worker configuration."""

    system: MIMOSystem
    factory: DetectorFactory
    frames_per_channel: int
    keep_traces: bool
    batch_frames: bool
    crash_dir: str | None


def _write_crash_log(crash_dir: str, spec: ShardSpec, exc: BaseException) -> None:
    try:
        directory = Path(crash_dir)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"shard-{spec.shard_id:04d}.log"
        path.write_text(
            f"shard {spec.shard_id} (snr {spec.snr_db} dB, blocks "
            f"[{spec.block_start}, {spec.block_stop})) failed in pid "
            f"{os.getpid()}\n\n"
            + "".join(traceback.format_exception(exc)),
            encoding="utf-8",
        )
    except OSError:  # pragma: no cover - forensics must never mask the error
        pass


def _flush_shard_telemetry(queue, spec: ShardSpec, tracer, metrics) -> None:
    """Drain the worker's tracer/metrics and post one flush message.

    Skips empty flushes; swallows queue failures (telemetry must never
    mask the shard's result or its crash).
    """
    if queue is None or (tracer is None and metrics is None):
        return
    events: tuple[TraceEvent, ...] = ()
    counters: dict[str, float] = {}
    if tracer is not None:
        drained, counters = tracer.drain()
        events = tuple(drained)
    snap = metrics.drain() if metrics is not None else None
    if not events and not counters and (snap is None or snap.empty):
        return
    try:
        queue.put(
            ShardTelemetry(
                shard_id=spec.shard_id,
                pid=os.getpid(),
                events=events,
                counters=counters or None,
                metrics=snap,
            )
        )
    except Exception:  # pragma: no cover - manager teardown race
        pass


def _run_shard(spec: ShardSpec, config: _ShardConfig, queue) -> ShardOutcome:
    """Worker entry point: run one shard's blocks and report progress.

    Runs in a separate process. When the spec carries a
    :class:`~repro.obs.tracer.TraceContext`, a worker-local tracer
    (parent epoch, this pid) and metrics registry are installed as the
    ambient observability for the shard's blocks, and both are flushed
    back through ``queue`` after every block — and from the crash path,
    so a partial trace of a dying shard still reaches the parent. Any
    exception is written to ``config.crash_dir`` before propagating.
    """
    from repro.mimo.montecarlo import _run_block

    ctx = spec.telemetry
    tracer = metrics = None
    tracer_token = metrics_token = None
    if ctx is not None and ctx.trace_enabled:
        tracer = Tracer(epoch=ctx.epoch, pid=os.getpid())
        tracer_token = set_tracer(tracer)
    if ctx is not None and ctx.metrics_enabled:
        metrics = MetricsRegistry()
        metrics_token = set_metrics(metrics)
    try:
        outcome = ShardOutcome(
            shard_id=spec.shard_id,
            point_index=spec.point_index,
            counter=ErrorCounter(),
        )
        for seed_seq in spec.seed_seqs:
            rng = np.random.default_rng(seed_seq)
            counter, stats, timer = _run_block(
                config.system,
                config.factory,
                spec.snr_db,
                config.frames_per_channel,
                rng,
                config.keep_traces,
                batch_frames=config.batch_frames,
            )
            outcome.counter = outcome.counter.merge(counter)
            outcome.frame_stats.extend(stats)
            outcome.timer = outcome.timer.merge(timer)
            outcome.frames += config.frames_per_channel
            if queue is not None:
                queue.put(
                    BlockProgress(
                        point_index=spec.point_index,
                        snr_db=spec.snr_db,
                        shard_id=spec.shard_id,
                        frames=config.frames_per_channel,
                        bit_errors=counter.bit_errors,
                        bits=counter.bits,
                        nodes_expanded=sum(
                            st.nodes_expanded for st in stats
                        ),
                        decode_time_s=timer.elapsed,
                    )
                )
            _flush_shard_telemetry(queue, spec, tracer, metrics)
        return outcome
    except BaseException as exc:
        # Partial-trace flush first: the crash log and the re-raise must
        # not lose whatever the shard observed before dying.
        _flush_shard_telemetry(queue, spec, tracer, metrics)
        if config.crash_dir:
            _write_crash_log(config.crash_dir, spec, exc)
        raise
    finally:
        if metrics_token is not None:
            reset_metrics(metrics_token)
        if tracer_token is not None:
            reset_tracer(tracer_token)


@dataclass
class _ShardProgress:
    """Parent-side per-shard progress (feeds the ETA and the lag gauges)."""

    blocks_total: int
    blocks_done: int = 0
    decode_time_s: float = 0.0


@dataclass
class _PointProgress:
    """Parent-side live accumulator for one SNR point's heartbeats."""

    snr_db: float
    blocks_total: int
    blocks_done: int = 0
    frames: int = 0
    bit_errors: int = 0
    bits: int = 0
    nodes_expanded: int = 0
    decode_time_s: float = 0.0
    #: Per-shard progress for this point's shards (shard_id keyed).
    shards: dict[int, _ShardProgress] = field(default_factory=dict)

    @property
    def ber(self) -> float:
        return self.bit_errors / self.bits if self.bits else float("nan")

    def eta_s(self, elapsed: float) -> float:
        """Remaining-wall estimate from **per-shard** progress.

        The max of two estimates: pool-throughput extrapolation
        (remaining blocks at the observed aggregate rate — tight when
        shards progress evenly) and the slowest *started* shard's own
        pace over its own remaining blocks (the straggler tail the
        aggregate misses — one shard at 10 % done bounds the point's
        finish no matter how fast the rest are going). NaN until the
        first block lands.
        """
        if not self.blocks_done or elapsed <= 0:
            return float("nan")
        remaining = self.blocks_total - self.blocks_done
        pool_eta = elapsed / self.blocks_done * remaining
        tail_eta = 0.0
        for shard in self.shards.values():
            if shard.blocks_done and shard.blocks_done < shard.blocks_total:
                shard_eta = (
                    elapsed
                    / shard.blocks_done
                    * (shard.blocks_total - shard.blocks_done)
                )
                tail_eta = max(tail_eta, shard_eta)
        return max(pool_eta, tail_eta)


def _emit_heartbeat(
    tracer,
    progress: _PointProgress,
    *,
    workers: int,
    wall_started: float,
    shard_id: int | None = None,
) -> None:
    """Parent-side ``mc.heartbeat`` with the serial engine's payload.

    Same keys as :meth:`MonteCarloEngine._heartbeat` plus ``workers``
    and ``shard`` (the shard whose block report triggered this re-emit);
    the ETA comes from :meth:`_PointProgress.eta_s` — per-shard-aware,
    so one straggling shard is reflected honestly (documented in
    ``docs/observability.md``).
    """
    if not tracer.enabled and not _log.isEnabledFor(logging.INFO):
        return
    elapsed = time.perf_counter() - wall_started
    eta_s = progress.eta_s(elapsed)
    nodes_per_s = (
        progress.nodes_expanded / progress.decode_time_s
        if progress.decode_time_s
        else 0.0
    )
    _log.info(
        "mc heartbeat %.1f dB: block %d/%d (shard %s), %d frames, "
        "ber=%.3g, %.0f nodes/s, eta %.1f s (%d workers)",
        progress.snr_db,
        progress.blocks_done,
        progress.blocks_total,
        "?" if shard_id is None else shard_id,
        progress.frames,
        progress.ber,
        nodes_per_s,
        eta_s,
        workers,
    )
    tracer.instant(
        "mc.heartbeat",
        snr_db=progress.snr_db,
        blocks_done=progress.blocks_done,
        blocks_total=progress.blocks_total,
        frames=progress.frames,
        ber=progress.ber,
        nodes_per_s=nodes_per_s,
        eta_s=eta_s,
        workers=workers,
        shard=shard_id,
    )


def plan_shards(
    snrs: Sequence[float],
    seed: int | None,
    channels: int,
    *,
    workers: int,
    chunk_blocks: int | None = None,
) -> list[ShardSpec]:
    """Build the full shard plan for a sweep, point-major in block order.

    Walks exactly the seeding tree the serial engine walks —
    ``SeedSequence(seed).spawn(len(snrs))`` then ``seq.spawn(channels)``
    per point — so each shard carries the serial per-block streams.
    """
    seqs = np.random.SeedSequence(seed).spawn(len(snrs))
    shards: list[ShardSpec] = []
    for point_index, (snr_db, seq) in enumerate(zip(snrs, seqs)):
        block_seqs = seq.spawn(channels)
        for start, stop in plan_chunks(channels, workers, chunk_blocks):
            shards.append(
                ShardSpec(
                    shard_id=len(shards),
                    point_index=point_index,
                    snr_db=float(snr_db),
                    block_start=start,
                    block_stop=stop,
                    seed_seqs=tuple(block_seqs[start:stop]),
                )
            )
    return shards


def run_sweep_sharded(
    engine: "MonteCarloEngine",
    detector_factory: DetectorFactory,
    snrs: Sequence[float],
    *,
    workers: int,
    detector_name: str | None = None,
) -> "SweepResult":
    """Run the engine's sweep with blocks sharded over a process pool.

    Bit-identical to ``engine.run(..., n_workers=1)`` in every decode
    outcome: BERs, per-frame stats (except ``wall_time_s``), node
    counts and traces. ``detector_factory`` must be picklable.
    ``target_bit_errors`` early-stopping is a serial-only feature and is
    ignored here (all planned blocks run).
    """
    from repro.mimo.montecarlo import SnrPoint, SweepResult

    snr_list = [float(s) for s in snrs]
    if not snr_list:
        raise ValueError("snrs must be non-empty")
    if engine.target_bit_errors is not None:
        _log.warning(
            "target_bit_errors is ignored with workers=%d "
            "(early stop is serial-only)",
            workers,
        )
    tracer = current_tracer()
    metrics = current_metrics()
    shards = plan_shards(
        snr_list,
        engine.seed,
        engine.channels,
        workers=workers,
        chunk_blocks=engine.chunk_blocks,
    )
    ctx = TraceContext.capture()
    if ctx is not None:
        # plan_shards stays a pure function of the seeding tree; the
        # observability payload is attached afterwards.
        shards = [replace(spec, telemetry=ctx) for spec in shards]
    config = _ShardConfig(
        system=engine.system,
        factory=detector_factory,
        frames_per_channel=engine.frames_per_channel,
        keep_traces=engine.keep_traces,
        batch_frames=engine.batch_frames,
        crash_dir=str(engine.crash_dir) if engine.crash_dir else None,
    )
    progress = {
        i: _PointProgress(snr_db=snr_db, blocks_total=engine.channels)
        for i, snr_db in enumerate(snr_list)
    }
    for spec in shards:
        progress[spec.point_index].shards[spec.shard_id] = _ShardProgress(
            blocks_total=spec.n_blocks
        )
    if metrics.enabled:
        blocks_total_gauge = metrics.gauge("mc.shard.blocks_total")
        for spec in shards:
            blocks_total_gauge.set(spec.n_blocks, shard=str(spec.shard_id))
    outcomes: dict[int, ShardOutcome] = {}
    wall_started = time.perf_counter()

    def drain(queue) -> None:
        while True:
            try:
                msg = queue.get_nowait()
            except Exception:  # queue.Empty via the manager proxy
                return
            if isinstance(msg, ShardTelemetry):
                if tracer.enabled:
                    tracer.absorb(msg.events, msg.counters)
                if metrics.enabled and msg.metrics is not None:
                    metrics.merge_snapshot(msg.metrics)
                    metrics.tick()
                continue
            p = progress[msg.point_index]
            p.blocks_done += 1
            p.frames += msg.frames
            p.bit_errors += msg.bit_errors
            p.bits += msg.bits
            p.nodes_expanded += msg.nodes_expanded
            p.decode_time_s += msg.decode_time_s
            shard = p.shards.get(msg.shard_id)
            if shard is not None:
                shard.blocks_done += 1
                shard.decode_time_s += msg.decode_time_s
                if metrics.enabled:
                    metrics.gauge("mc.shard.blocks_done").set(
                        shard.blocks_done, shard=str(msg.shard_id)
                    )
            if (
                engine.heartbeat_every
                and p.blocks_done % engine.heartbeat_every == 0
            ):
                _emit_heartbeat(
                    tracer,
                    p,
                    workers=workers,
                    wall_started=wall_started,
                    shard_id=msg.shard_id,
                )

    with Manager() as manager:
        queue = manager.Queue()
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(_run_shard, spec, config, queue): spec
                    for spec in shards
                }
                pending = set(futures)
                while pending:
                    done, pending = wait(
                        pending, timeout=0.1, return_when=FIRST_COMPLETED
                    )
                    drain(queue)
                    for future in done:
                        outcome = future.result()  # re-raises worker crashes
                        outcomes[outcome.shard_id] = outcome
        finally:
            # Also on the crash path: absorb whatever telemetry (incl. a
            # dying shard's partial flush) reached the queue before the
            # manager goes down, so failed runs keep their trace.
            drain(queue)
            metrics.tick(force=True)

    points: list[SnrPoint] = []
    for point_index, snr_db in enumerate(snr_list):
        with tracer.span(
            "mc.point", snr_db=snr_db, workers=workers, sharded=True
        ):
            point = SnrPoint(snr_db=snr_db, errors=ErrorCounter())
            for shard_id in sorted(outcomes):
                outcome = outcomes[shard_id]
                if outcome.point_index != point_index:
                    continue
                point.errors = point.errors.merge(outcome.counter)
                point.frame_stats.extend(outcome.frame_stats)
                point.timer = point.timer.merge(outcome.timer)
                point.frames += outcome.frames
            point.decode_time_s = point.timer.elapsed
        _log.info(
            "mc point %.1f dB: ber=%.3g over %d frames (%.3f s decode, "
            "%d workers)",
            snr_db,
            point.ber,
            point.frames,
            point.decode_time_s,
            workers,
        )
        points.append(point)
    probe = detector_factory()
    return SweepResult(
        detector_name=detector_name or probe.name,
        system_label=repr(engine.system),
        points=points,
    )
