"""Spatially correlated MIMO channels (Kronecker model).

The paper's evaluation uses i.i.d. Rayleigh fading; real arrays exhibit
spatial correlation, which degrades detection and *increases* sphere
decoder complexity (the channel Gram matrix becomes ill-conditioned, so
partial distances separate later in the tree). This module provides the
standard Kronecker correlation model so both effects can be studied:

    H = R_rx^(1/2)  H_w  R_tx^(1/2)

with ``H_w`` i.i.d. CN(0,1) and exponential correlation matrices
``R[i, j] = rho^|i-j|`` (Loyka's model), the common single-parameter
choice for uniform linear arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mimo.channel import ChannelModel
from repro.util.rng import as_generator
from repro.util.validation import check_positive_int


def exponential_correlation(n: int, rho: float) -> np.ndarray:
    """Exponential correlation matrix ``R[i, j] = rho^|i-j|``.

    ``rho`` in [0, 1): 0 recovers i.i.d. fading; values around 0.7 model
    closely spaced antennas.
    """
    n = check_positive_int(n, "n")
    if not 0.0 <= rho < 1.0:
        raise ValueError(f"rho must be in [0, 1), got {rho}")
    idx = np.arange(n)
    return rho ** np.abs(idx[:, None] - idx[None, :]).astype(float)


def matrix_sqrt(mat: np.ndarray) -> np.ndarray:
    """Hermitian PSD matrix square root via eigendecomposition."""
    mat = np.asarray(mat)
    if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
        raise ValueError(f"mat must be square, got shape {mat.shape}")
    if not np.allclose(mat, np.conj(mat.T), atol=1e-10):
        raise ValueError("mat must be Hermitian")
    vals, vecs = np.linalg.eigh(mat)
    if vals.min() < -1e-10:
        raise ValueError("mat must be positive semi-definite")
    vals = np.clip(vals, 0.0, None)
    return (vecs * np.sqrt(vals)) @ np.conj(vecs.T)


@dataclass(frozen=True)
class KroneckerChannelModel(ChannelModel):
    """Rayleigh fading with separable transmit/receive correlation.

    Parameters (in addition to :class:`ChannelModel`'s)
    ----------
    rho_tx, rho_rx:
        Exponential correlation coefficients at each array end.
    """

    rho_tx: float = 0.0
    rho_rx: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        for name in ("rho_tx", "rho_rx"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {value}")
        # Precompute the correlation square roots (frozen dataclass:
        # stash via object.__setattr__).
        object.__setattr__(
            self,
            "_sqrt_rx",
            matrix_sqrt(exponential_correlation(self.n_rx, self.rho_rx)),
        )
        object.__setattr__(
            self,
            "_sqrt_tx",
            matrix_sqrt(exponential_correlation(self.n_tx, self.rho_tx)),
        )

    def draw_channel(self, rng: object = None) -> np.ndarray:
        """``R_rx^(1/2) H_w R_tx^(1/2)`` with i.i.d. CN(0,1) ``H_w``.

        Per-entry variance remains 1 (the correlation matrices have unit
        diagonal), so SNR bookkeeping is unchanged.
        """
        gen = as_generator(rng)
        h_w = super().draw_channel(gen)
        return self._sqrt_rx @ h_w @ self._sqrt_tx
