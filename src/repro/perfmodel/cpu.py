"""CPU (MKL multi-core) execution-time model."""

from __future__ import annotations

import numpy as np

from repro.detectors.base import DecodeStats
from repro.perfmodel.calibration import CPU_DEFAULTS, CpuParams
from repro.util.validation import check_positive_int


class CPUCostModel:
    """Time model for the paper's optimised CPU sphere decoder.

    Consumes the same decode traces as the FPGA pipeline simulator, so
    CPU-vs-FPGA comparisons hold the algorithmic work constant and vary
    only the platform — matching the paper's statement that the hardware
    design "mimics the execution profile and operational sequence of the
    CPU execution".

    Parameters
    ----------
    n_rx:
        Receive antennas; sets the tree-state row length (``2 (N+1)``
        words per generated child) charged at the memory-bound rate.
    params:
        Calibrated constants (see :mod:`repro.perfmodel.calibration`).
    """

    name = "cpu"

    def __init__(self, n_rx: int = 10, params: CpuParams = CPU_DEFAULTS) -> None:
        self.n_rx = check_positive_int(n_rx, "n_rx")
        self.params = params

    @property
    def words_per_child(self) -> int:
        """Tree-state words touched per generated child."""
        return 2 * (self.n_rx + 1)

    def decode_seconds(self, stats: DecodeStats) -> float:
        """Execution time for one decode's work trace."""
        p = self.params
        batches = len(stats.batches) if stats.batches else stats.gemm_calls
        per_child = p.child_s + p.word_s * self.words_per_child
        return (
            p.setup_s
            + batches * p.dispatch_s
            + stats.nodes_generated * per_child
            + stats.gemm_flops / p.flop_rate
        )

    def mean_decode_seconds(self, stats_list: list[DecodeStats]) -> float:
        """Mean decode time over per-frame stats records."""
        if not stats_list:
            raise ValueError("stats_list must be non-empty")
        return float(np.mean([self.decode_seconds(st) for st in stats_list]))


def linear_detector_seconds(
    n_tx: int,
    n_rx: int,
    *,
    vectors_per_block: int = 1,
    params: CpuParams = CPU_DEFAULTS,
) -> float:
    """CPU time for a ZF/MMSE detection (Fig. 12 baselines).

    One filter computation (``O(M^2 N + M^3)`` flops, amortised over
    ``vectors_per_block`` uses) plus a matrix-vector application and a
    slicing pass per received vector.
    """
    n_tx = check_positive_int(n_tx, "n_tx")
    n_rx = check_positive_int(n_rx, "n_rx")
    vectors_per_block = check_positive_int(vectors_per_block, "vectors_per_block")
    # Complex flops (x8 real) for Gram + inversion + filter application.
    prep_flops = 8 * (n_tx * n_tx * n_rx + n_tx**3)
    apply_flops = 8 * n_tx * n_rx
    return (
        params.setup_s / vectors_per_block
        + (prep_flops / vectors_per_block + apply_flops) / params.flop_rate
        + params.dispatch_s
    )
