"""WARP v3 (Geosphere) execution-time model for the Fig. 12 baseline."""

from __future__ import annotations

import numpy as np

from repro.detectors.base import DecodeStats
from repro.perfmodel.calibration import WARP_DEFAULTS, WarpParams


class WARPCostModel:
    """Geosphere's scalar per-node cost on the WARP radio platform.

    Geosphere processes one tree node at a time with memory-bound state
    updates (the profile the paper's GEMM refactor eliminates); the
    model charges a calibrated cycle count per expanded node at the
    platform clock.
    """

    name = "warp-geosphere"

    def __init__(self, params: WarpParams = WARP_DEFAULTS) -> None:
        self.params = params

    def decode_seconds(self, stats: DecodeStats) -> float:
        """Execution time for one decode's work trace."""
        p = self.params
        return p.setup_s + stats.nodes_expanded * p.cycles_per_node / p.clock_hz

    def mean_decode_seconds(self, stats_list: list[DecodeStats]) -> float:
        """Mean decode time over per-frame stats records."""
        if not stats_list:
            raise ValueError("stats_list must be non-empty")
        return float(np.mean([self.decode_seconds(st) for st in stats_list]))
