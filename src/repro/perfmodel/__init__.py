"""Execution-time models for the paper's comparison platforms.

The decoders in :mod:`repro.core` / :mod:`repro.detectors` produce
platform-independent *work traces* (:class:`~repro.detectors.base.DecodeStats`).
This package converts those traces into execution time on each platform
the paper compares:

* :class:`CPUCostModel` — the 64-core MKL/Boost CPU implementation;
* :class:`GPUCostModel` — the A100 GEMM-BFS implementation of [1]
  (whose per-level kernel-launch + radius-synchronisation overhead is
  the paper's core argument in section IV-F);
* :class:`WARPCostModel` — Geosphere on the Rice WARP v3 radio platform
  (Fig. 12);
* :func:`linear_detector_seconds` — ZF/MMSE filters on the CPU.

The FPGA itself is modelled structurally in :mod:`repro.fpga.pipeline`.
All constants live in :mod:`repro.perfmodel.calibration` together with
the anchor points they were fitted against.
"""

from repro.perfmodel.calibration import (
    CpuParams,
    GpuParams,
    WarpParams,
    CPU_DEFAULTS,
    GPU_DEFAULTS,
    WARP_DEFAULTS,
)
from repro.perfmodel.cpu import CPUCostModel, linear_detector_seconds
from repro.perfmodel.gpu import GPUCostModel
from repro.perfmodel.warp import WARPCostModel

__all__ = [
    "CpuParams",
    "GpuParams",
    "WarpParams",
    "CPU_DEFAULTS",
    "GPU_DEFAULTS",
    "WARP_DEFAULTS",
    "CPUCostModel",
    "linear_detector_seconds",
    "GPUCostModel",
    "WARPCostModel",
]
