"""GPU (A100, GEMM-BFS of [1]) execution-time model.

The paper's argument (section IV-F): the SD radius update is a global
synchronisation, which is "very costly on GPUs", so the GPU
implementation runs breadth-first — one kernel + device synchronisation
per tree level — and pays for it by exploring orders of magnitude more
nodes. This model charges exactly those terms against the BFS decoder's
trace.
"""

from __future__ import annotations

import numpy as np

from repro.detectors.base import DecodeStats
from repro.perfmodel.calibration import GPU_DEFAULTS, GpuParams


class GPUCostModel:
    """Time model for the level-synchronous GPU sphere decoder."""

    name = "gpu-bfs"

    def __init__(self, params: GpuParams = GPU_DEFAULTS) -> None:
        self.params = params

    def decode_seconds(self, stats: DecodeStats) -> float:
        """Execution time for one decode's work trace.

        Each :class:`BatchEvent` of the BFS decoder is one tree level
        (one kernel launch + sync); radius escalations simply append more
        level events, so they are charged automatically.
        """
        p = self.params
        levels = len(stats.batches) if stats.batches else stats.gemm_calls
        return (
            p.setup_s
            + levels * p.sync_per_level_s
            + stats.nodes_generated * p.node_s
            + stats.gemm_flops / p.flop_rate
        )

    def mean_decode_seconds(self, stats_list: list[DecodeStats]) -> float:
        """Mean decode time over per-frame stats records."""
        if not stats_list:
            raise ValueError("stats_list must be non-empty")
        return float(np.mean([self.decode_seconds(st) for st in stats_list]))
