"""Cost-model constants and the anchors they were calibrated against.

Methodology
-----------
Absolute times in the paper come from physical machines we do not have
(64-core AMD + MKL, A100, WARP v3). Each platform model here is a small
analytic formula over the decoder's work trace; its constants are set in
two steps:

1. *Structural* terms come from the platform's characteristics (kernel
   launch + synchronisation latency, effective memory-bound flop rates,
   per-batch dispatch overhead).
2. The remaining constants are solved from *anchor* points the paper
   reports for the 10x10 4-QAM system, using the canonical decode trace
   of this repository (sorted-DFS, noise-scaled radius alpha=2,
   per-antenna SNR; about 530 expansions/frame at 4 dB and 12 at 20 dB).

Everything away from the anchors — the SNR dependence, antenna and
modulation scaling, platform crossovers — then follows from the measured
traces, which is the reproduction target. EXPERIMENTS.md discusses where
the paper's own absolute numbers are mutually inconsistent and how far
the trace-driven models land from them.

Anchors (10x10, 4-QAM unless noted):

===========  ========================================  ================
Platform     Anchor                                    Paper source
===========  ========================================  ================
CPU          7 ms at SNR 4 dB; ~1 ms at SNR 20 dB      Table II / Fig. 6
FPGA (opt)   ~1.4 ms at 4 dB (5x CPU); 5x at 20 dB     Fig. 6
FPGA (base)  ~1.4x faster than CPU at 4 dB             Fig. 6
GPU (BFS)    6 ms at SNR 12 dB (flat-ish vs SNR)       Section IV-F
WARP         11 ms at SNR 20 dB (Geosphere)            Fig. 12
===========  ========================================  ================

(The FPGA anchors are applied inside
:class:`repro.fpga.pipeline.PipelineConfig` as the ``node_roundtrip_cycles``
and ``setup_cycles`` terms.)
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CpuParams:
    """Multi-core MKL sphere-decoder cost model.

    ``decode_time = setup + batches * dispatch
    + children * (child + word * words_per_child) + flops / flop_rate``

    The per-batch dispatch term models MKL call overhead plus list
    synchronisation; the per-word term charges the tree-state traffic
    (whose row length grows with N — the cache-unfriendly, memory-bound
    profile the FPGA's prefetch unit hides). ``setup`` covers QR given a
    new ``ybar`` plus list initialisation.
    """

    setup_s: float = 8.6e-4
    dispatch_s: float = 8.0e-6
    child_s: float = 1.35e-7
    word_s: float = 3.5e-8
    flop_rate: float = 4.0e9

    def __post_init__(self) -> None:
        _check_positive(self)


@dataclass(frozen=True)
class GpuParams:
    """A100 GEMM-BFS cost model (the [1] implementation).

    One kernel launch + device-wide synchronisation + frontier
    compaction per tree level (the radius/frontier handshake the paper
    blames for GPU inefficiency, dominant at every SNR), GEMM work at an
    effective rate well below peak (skinny frontier matrices), and
    per-node frontier management cost.
    """

    setup_s: float = 1.0e-3  # PCIe staging + plan + final argmin readback
    sync_per_level_s: float = 4.5e-4
    node_s: float = 1.0e-7
    flop_rate: float = 5.0e11

    def __post_init__(self) -> None:
        _check_positive(self)


@dataclass(frozen=True)
class WarpParams:
    """Geosphere on the WARP v3 software-defined radio (Fig. 12).

    Scalar (non-batched) per-node processing on the 160 MHz platform.
    The per-node constant is solved from the paper's single WARP anchor
    (11 ms at 20 dB) against our trace (~14 expansions/frame there), so
    it absorbs Geosphere's whole per-vector pipeline on that platform —
    the memory-bound profile the paper's GEMM refactor removes.
    """

    clock_hz: float = 160.0e6
    cycles_per_node: float = 125_000.0
    setup_s: float = 1.0e-4

    def __post_init__(self) -> None:
        _check_positive(self)


def _check_positive(params: object) -> None:
    for name, value in vars(params).items():
        if value <= 0:
            raise ValueError(f"{type(params).__name__}.{name} must be positive")


CPU_DEFAULTS = CpuParams()
GPU_DEFAULTS = GpuParams()
WARP_DEFAULTS = WarpParams()
