"""Real-valued-decomposition sphere decoding (the PAM-domain variant).

Most hardware sphere decoders (Geosphere included) work on the
equivalent real system rather than the complex one: the ``M``-level tree
with ``P`` children per node becomes a ``2M``-level tree with ``sqrt(P)``
children — same leaf count, but far narrower branching. For 16-QAM that
is 20 levels x 4 children instead of 10 levels x 16, which changes the
pruning dynamics (finer-grained PDs allow earlier cuts) and the GEMM
shapes (skinnier, twice as many).

Since the lattice representation became a first-class
:class:`~repro.detectors.engine.EngineDetector` axis
(:mod:`repro.core.lattice`), this class is a thin preset: a
:class:`~repro.detectors.sphere.SphereDecoder` pinned to
``lattice="real"`` with the historical DFS/noise-scaled-radius defaults.
The engine shell maps the channel through
:func:`~repro.mimo.preprocessing.real_decomposition`, searches the
per-dimension PAM alphabet, and folds the (I, Q) decision pair back to
QAM indices; exactness carries over — verified against brute-force ML in
``tests/test_real_sd.py`` — and the decode trace drives the same
platform models, enabling the complex-vs-real domain comparison. The
reordered (interleaved) variant of Azzam & Ayanoglu is the same decoder
with ``lattice="real-reordered"`` (registry kind ``sd-real-reordered``).
"""

from __future__ import annotations

from repro.core.radius import NoiseScaledRadius, RadiusPolicy
from repro.detectors.sphere import SphereDecoder
from repro.mimo.constellation import Constellation, pam_component

__all__ = ["RealSphereDecoder", "pam_component"]


class RealSphereDecoder(SphereDecoder):
    """Exact sphere decoding over the 2M-dimensional real lattice.

    Parameters mirror :class:`SphereDecoder`; the traversal runs on the
    real decomposition with the PAM alphabet. ``lattice`` selects the
    column layout (``"real"`` stacked — the default — or
    ``"real-reordered"`` interleaved).
    """

    name = "sphere-real"

    def __init__(
        self,
        constellation: Constellation,
        *,
        strategy: str = "dfs",
        radius_policy: RadiusPolicy | None = None,
        max_nodes: int | None = None,
        lattice: str = "real",
        record_trace: bool = True,
        engine: str | None = None,
    ) -> None:
        super().__init__(
            constellation,
            strategy=strategy,
            radius_policy=radius_policy or NoiseScaledRadius(alpha=2.0),
            max_nodes=max_nodes,
            lattice=lattice,
            record_trace=record_trace,
            engine=engine,
        )
        #: The per-dimension PAM search alphabet (back-compat alias).
        self.pam = self.search_constellation
