"""Real-valued-decomposition sphere decoding (the PAM-domain variant).

Most hardware sphere decoders (Geosphere included) work on the
equivalent real system rather than the complex one: the ``M``-level tree
with ``P`` children per node becomes a ``2M``-level tree with ``sqrt(P)``
children — same leaf count, but far narrower branching. For 16-QAM that
is 20 levels x 4 children instead of 10 levels x 16, which changes the
pruning dynamics (finer-grained PDs allow earlier cuts) and the GEMM
shapes (skinnier, twice as many).

This implementation reuses the complex search machinery wholesale: the
per-dimension PAM alphabet is wrapped as a degenerate "constellation"
(real points, Gray labels), the real channel decomposition is fed
through the same QR + :class:`SphereDecoder` stack, and the PAM decision
pair (I, Q) is mapped back to QAM indices. Exactness therefore carries
over — verified against brute-force ML in ``tests/test_real_sd.py`` —
and the decode trace drives the same platform models, enabling the
complex-vs-real domain comparison.
"""

from __future__ import annotations

import numpy as np

from repro.core.radius import NoiseScaledRadius, RadiusPolicy
from repro.detectors.base import DetectionResult, Detector
from repro.detectors.sphere import SphereDecoder
from repro.mimo.constellation import Constellation, gray_code
from repro.mimo.preprocessing import real_decomposition
from repro.util.validation import check_matrix, check_vector


def pam_component(constellation: Constellation) -> Constellation:
    """The per-dimension PAM alphabet of a square QAM constellation.

    Returns a :class:`Constellation` whose points are the (normalised)
    real levels with the same Gray labelling the QAM uses per dimension,
    so that ``qam_index = i_index * L + q_index`` holds between the two.
    """
    if not constellation.is_square_qam:
        raise ValueError("real decomposition requires a square QAM constellation")
    side = int(round(np.sqrt(constellation.order)))
    scale = 1.0 / np.sqrt(2.0 * (constellation.order - 1) / 3.0)
    levels = (np.arange(side) * 2 - (side - 1)) * scale
    bits_per_dim = side.bit_length() - 1
    gray = np.asarray(gray_code(np.arange(side)))
    labels = (
        (gray[:, None] >> np.arange(bits_per_dim - 1, -1, -1)) & 1
    ).astype(bool)
    return Constellation(
        f"{side}-PAM", levels.astype(complex), labels, normalize=False
    )


class RealSphereDecoder(Detector):
    """Exact sphere decoding over the 2M-dimensional real lattice.

    Parameters mirror :class:`SphereDecoder`; the traversal runs on the
    real decomposition with the PAM alphabet.
    """

    name = "sphere-real"

    def __init__(
        self,
        constellation: Constellation,
        *,
        strategy: str = "dfs",
        radius_policy: RadiusPolicy | None = None,
        max_nodes: int | None = None,
        record_trace: bool = True,
    ) -> None:
        self.constellation = constellation
        self.pam = pam_component(constellation)
        self._inner = SphereDecoder(
            self.pam,
            strategy=strategy,
            radius_policy=radius_policy or NoiseScaledRadius(alpha=2.0),
            max_nodes=max_nodes,
            record_trace=record_trace,
        )
        self._channel: np.ndarray | None = None
        self._prepared = False

    def prepare(self, channel: np.ndarray, noise_var: float = 0.0) -> None:
        channel = check_matrix(channel, "channel")
        if channel.shape[0] < channel.shape[1]:
            raise ValueError("real-domain SD needs n_rx >= n_tx")
        self._channel = channel
        h_real, _ = real_decomposition(
            channel, np.zeros(channel.shape[0], complex)
        )
        # The complex AWGN's real/imag parts each carry half the variance.
        self._inner.prepare(h_real.astype(complex), noise_var=noise_var / 2.0)
        self._prepared = True

    def detect(self, received: np.ndarray) -> DetectionResult:
        self._require_prepared()
        received = check_vector(
            received, "received", length=self._channel.shape[0]
        )
        y_real = np.concatenate([received.real, received.imag]).astype(complex)
        inner_result = self._inner.detect(y_real)
        n_tx = self._channel.shape[1]
        side = self.pam.order
        # Inner indices are PAM level indices: first M are I, last M are Q.
        i_lvl = inner_result.indices[:n_tx]
        q_lvl = inner_result.indices[n_tx:]
        indices = (i_lvl * side + q_lvl).astype(np.int64)
        symbols = self.constellation.map_indices(indices)
        bits = self.constellation.indices_to_bits(indices)
        residual = received - self._channel @ symbols
        metric = float(np.real(np.vdot(residual, residual)))
        return DetectionResult(
            indices=indices,
            symbols=symbols,
            bits=bits,
            metric=metric,
            stats=inner_result.stats,
        )
