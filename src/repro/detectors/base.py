"""Detector interface and instrumentation records.

Every detector follows a two-phase protocol mirroring a real base-station
deployment (and the paper's FPGA host flow):

1. :meth:`Detector.prepare` — per-channel-realisation preprocessing (QR,
   filter matrices...). Channels change at fading-block rate, much slower
   than symbols, so this cost is amortised.
2. :meth:`Detector.detect` — per-received-vector decoding.

Tree-search detectors additionally emit a :class:`DecodeStats` record of
how much work the search performed: node counts, GEMM calls/FLOPs and the
per-expansion :class:`BatchEvent` trace. That trace is what the
cycle-approximate FPGA pipeline simulator and the CPU/GPU cost models
consume — the *algorithm* produces the work schedule, the *platform
models* turn it into time.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field, fields
from typing import Iterable, NamedTuple

import numpy as np


class BatchEvent(NamedTuple):
    """One batched node-expansion step.

    Attributes
    ----------
    level:
        Tree level being expanded; level ``k`` assigns transmit symbol
        ``s_k`` (``k = n_tx - 1`` is the root's children, ``k = 0`` the
        leaves).
    pool_size:
        Number of tree nodes expanded together in this batch (1 for pure
        best-first pops; the whole frontier for BFS levels).
    """

    level: int
    pool_size: int


@dataclass
class DecodeStats:
    """Work performed by one ``detect`` call of a tree-search detector.

    Aggregation across frames goes through :meth:`merge`, which derives
    the per-field rule from the dataclass definition itself: numeric
    fields sum and list fields concatenate unless the field declares a
    ``merge`` metadata override (``max_list_size`` keeps the maximum).
    Adding a field therefore never silently drops it from aggregates —
    ``tests/test_detector_base.py`` asserts every field round-trips.

    Merging is **order-independent** for every scalar field (sums and
    maxima commute and associate), so cross-process aggregation needs no
    global frame order: ``a.merge(b)`` equals ``b.merge(a)`` field-wise
    except for the list fields (``batches``, ``radius_trace``), which
    concatenate left-to-right. Callers that shard frames across workers
    therefore merge worker results in deterministic shard order (see
    :mod:`repro.mimo.parallel_mc`) so the concatenated traces reproduce
    the serial order exactly.
    """

    nodes_expanded: int = 0
    nodes_generated: int = 0
    nodes_pruned: int = 0
    leaves_reached: int = 0
    radius_updates: int = 0
    gemm_calls: int = 0
    gemm_flops: int = 0
    max_list_size: int = field(default=0, metadata={"merge": "max"})
    wall_time_s: float = 0.0
    truncated: int = 0
    batches: list[BatchEvent] = field(default_factory=list)
    radius_trace: list[float] = field(default_factory=list)

    def merge(self, other: "DecodeStats") -> "DecodeStats":
        """Aggregate two stats records (e.g. across Monte Carlo frames)."""
        merged: dict[str, object] = {}
        for f in fields(self):
            mine, theirs = getattr(self, f.name), getattr(other, f.name)
            rule = f.metadata.get("merge")
            if rule is None:
                if isinstance(mine, (int, float)) or isinstance(mine, list):
                    rule = "sum"  # numeric add / list concatenation
                else:
                    raise TypeError(
                        f"DecodeStats.{f.name}: no default merge rule for "
                        f"{type(mine).__name__}; declare one via "
                        "field(metadata={'merge': ...})"
                    )
            if rule == "sum":
                merged[f.name] = mine + theirs
            elif rule == "max":
                merged[f.name] = max(mine, theirs)
            else:
                raise TypeError(
                    f"DecodeStats.{f.name}: unknown merge rule {rule!r}"
                )
        return type(self)(**merged)

    @classmethod
    def merge_all(cls, stats: Iterable["DecodeStats"]) -> "DecodeStats":
        """Fold many stats records into one in linear time.

        Equivalent to chaining :meth:`merge` pairwise left-to-right but
        without the quadratic list re-concatenation — the form the
        Monte Carlo engine and the process-sharded sweep runner use to
        aggregate thousands of per-frame records.
        """
        merged = cls()
        total: dict[str, object] = {
            f.name: getattr(merged, f.name) for f in fields(cls)
        }
        for st in stats:
            for f in fields(cls):
                value = getattr(st, f.name)
                rule = f.metadata.get("merge")
                if rule == "max":
                    total[f.name] = max(total[f.name], value)
                elif isinstance(value, list):
                    total[f.name].extend(value)
                else:
                    total[f.name] += value
        return cls(**total)


@dataclass
class DetectionResult:
    """Outcome of decoding one received vector.

    Attributes
    ----------
    indices:
        ``(n_tx,)`` decided constellation point indices, in the original
        antenna order.
    symbols:
        The corresponding complex points.
    bits:
        The corresponding hard bits (flat, ``n_tx * bits_per_symbol``).
    metric:
        ``||y - H s_hat||^2`` of the returned decision (the ML objective,
        eq. 2). ``inf`` if a detector failed to produce a candidate.
    stats:
        Search instrumentation; ``None`` for closed-form detectors.
    """

    indices: np.ndarray
    symbols: np.ndarray
    bits: np.ndarray
    metric: float
    stats: DecodeStats | None = None


class Detector(abc.ABC):
    """Abstract MIMO detector (two-phase: ``prepare`` then ``detect``)."""

    #: Short identifier used in reports and experiment tables.
    name: str = "detector"

    @abc.abstractmethod
    def prepare(self, channel: np.ndarray, noise_var: float = 0.0) -> None:
        """Absorb one channel realisation (and the noise variance).

        Must be called before :meth:`detect`; may be called repeatedly
        with new channels.
        """

    @abc.abstractmethod
    def detect(self, received: np.ndarray) -> DetectionResult:
        """Decode one received vector against the prepared channel."""

    def detect_batch(self, received: np.ndarray) -> list[DetectionResult]:
        """Decode each row of ``received`` (default: sequential loop)."""
        received = np.asarray(received)
        if received.ndim != 2:
            raise ValueError(f"received must be 2-D, got shape {received.shape}")
        return [self.detect(row) for row in received]

    def _require_prepared(self, attr: str = "_prepared") -> None:
        if not getattr(self, attr, False):
            raise RuntimeError(
                f"{type(self).__name__}.detect called before prepare()"
            )
