"""Detector interface and instrumentation records.

Every detector follows a two-phase protocol mirroring a real base-station
deployment (and the paper's FPGA host flow):

1. :meth:`Detector.prepare` — per-channel-realisation preprocessing (QR,
   filter matrices...). Channels change at fading-block rate, much slower
   than symbols, so this cost is amortised.
2. :meth:`Detector.detect` — per-received-vector decoding.

Tree-search detectors additionally emit a :class:`DecodeStats` record of
how much work the search performed: node counts, GEMM calls/FLOPs and the
per-expansion :class:`BatchEvent` trace. That trace is what the
cycle-approximate FPGA pipeline simulator and the CPU/GPU cost models
consume — the *algorithm* produces the work schedule, the *platform
models* turn it into time.

:class:`BatchEvent` and :class:`DecodeStats` are defined in
:mod:`repro.core.stats` (the traversal engine produces them); they are
re-exported here unchanged since this is where the rest of the codebase
historically imports them from.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.core.stats import BatchEvent, DecodeStats

__all__ = [
    "BatchEvent",
    "DecodeStats",
    "DetectionResult",
    "Detector",
]


@dataclass
class DetectionResult:
    """Outcome of decoding one received vector.

    Attributes
    ----------
    indices:
        ``(n_tx,)`` decided constellation point indices, in the original
        antenna order.
    symbols:
        The corresponding complex points.
    bits:
        The corresponding hard bits (flat, ``n_tx * bits_per_symbol``).
    metric:
        ``||y - H s_hat||^2`` of the returned decision (the ML objective,
        eq. 2). ``inf`` if a detector failed to produce a candidate.
    stats:
        Search instrumentation; ``None`` for closed-form detectors.
    """

    indices: np.ndarray
    symbols: np.ndarray
    bits: np.ndarray
    metric: float
    stats: DecodeStats | None = None


class Detector(abc.ABC):
    """Abstract MIMO detector (two-phase: ``prepare`` then ``detect``)."""

    #: Short identifier used in reports and experiment tables.
    name: str = "detector"

    @abc.abstractmethod
    def prepare(self, channel: np.ndarray, noise_var: float = 0.0) -> None:
        """Absorb one channel realisation (and the noise variance).

        Must be called before :meth:`detect`; may be called repeatedly
        with new channels.
        """

    @abc.abstractmethod
    def detect(self, received: np.ndarray) -> DetectionResult:
        """Decode one received vector against the prepared channel."""

    def detect_batch(self, received: np.ndarray) -> list[DetectionResult]:
        """Decode each row of ``received`` (default: sequential loop)."""
        received = np.asarray(received)
        if received.ndim != 2:
            raise ValueError(f"received must be 2-D, got shape {received.shape}")
        return [self.detect(row) for row in received]

    def _require_prepared(self, attr: str = "_prepared") -> None:
        if not getattr(self, attr, False):
            raise RuntimeError(
                f"{type(self).__name__}.detect called before prepare()"
            )
