"""Fixed-complexity sphere decoder (FSD) — related-work baseline.

Barbero & Thompson's FSD (paper section II-C) trades ML optimality for a
*data-independent* schedule: the first ``rho`` tree levels are fully
enumerated (all ``P`` children) and every remaining level is decided by
successive interference cancellation (single best child). The workload
is therefore exactly ``P^rho`` root-to-leaf paths regardless of SNR —
"massively parallelizable with minimal dependencies", but resource-hungry
and sub-optimal, which is why the paper pursues the exact SD instead.

The schedule is :class:`~repro.core.traversal.FsdPolicy`: each level
processes the entire ``P^rho``-wide candidate block with one
:class:`ExpandRequest`, so FSD also serves as a stress test for the
batched evaluator. Running through the shared engine shell gives FSD
the cross-frame fused ``decode_batch`` path and ``fsd.*`` obs spans.
"""

from __future__ import annotations

import numpy as np

from repro.core.compiled import ENGINES
from repro.core.traversal import FsdPolicy, TraversalPolicy
from repro.detectors.engine import EngineDetector
from repro.mimo.constellation import Constellation
from repro.util.validation import check_in, check_positive_int


class FixedComplexityDecoder(EngineDetector):
    """FSD: full enumeration on ``rho`` levels, SIC below.

    Parameters
    ----------
    constellation:
        Symbol alphabet.
    rho:
        Number of fully-enumerated levels (``P^rho`` candidate paths).
        The classic choice for square systems is small (1 or 2).
    record_trace:
        Keep per-level :class:`BatchEvent` records.
    """

    name = "fsd"
    trace_root = "fsd"
    counter_fields = (
        "nodes_expanded",
        "nodes_pruned",
        "leaves_reached",
        "gemm_calls",
    )
    # FSD conventionally uses an ordering that puts the *least*
    # reliable streams in the fully-enumerated levels; SQRD places the
    # weakest stream at the deepest (last-detected) level, and its
    # reverse property means the top tree levels hold strong streams.
    # We keep SQRD: it is the standard robustness ordering and the
    # detector stays sub-optimal either way.
    ordering = "sqrd"

    def __init__(
        self,
        constellation: Constellation,
        *,
        rho: int = 1,
        record_trace: bool = True,
        engine: str | None = None,
    ) -> None:
        self.constellation = constellation
        self.rho = check_positive_int(rho, "rho")
        self.record_trace = record_trace
        self.engine = (
            None if engine is None else check_in(engine, "engine", ENGINES)
        )
        self._qr = None
        self._channel = None
        self._noise_var = 0.0
        self._prepared = False

    def _check_channel(self, channel: np.ndarray) -> None:
        if self.rho > channel.shape[1]:
            raise ValueError(
                f"rho={self.rho} exceeds the number of streams {channel.shape[1]}"
            )

    def _policy(self) -> TraversalPolicy:
        return FsdPolicy(rho=self.rho)
