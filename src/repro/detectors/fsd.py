"""Fixed-complexity sphere decoder (FSD) — related-work baseline.

Barbero & Thompson's FSD (paper section II-C) trades ML optimality for a
*data-independent* schedule: the first ``rho`` tree levels are fully
enumerated (all ``P`` children) and every remaining level is decided by
successive interference cancellation (single best child). The workload
is therefore exactly ``P^rho`` root-to-leaf paths regardless of SNR —
"massively parallelizable with minimal dependencies", but resource-hungry
and sub-optimal, which is why the paper pursues the exact SD instead.

The implementation is fully vectorised: each level processes the entire
``P^rho``-wide candidate block with one :meth:`GemmEvaluator.expand`
call, so FSD also serves as a stress test for the batched evaluator.
"""

from __future__ import annotations

import numpy as np

from repro.core.gemm import GemmEvaluator
from repro.detectors.base import BatchEvent, DecodeStats, DetectionResult, Detector
from repro.mimo.constellation import Constellation
from repro.mimo.preprocessing import QRResult, effective_receive, sorted_qr
from repro.util.timing import Timer
from repro.util.validation import check_matrix, check_positive_int, check_vector


class FixedComplexityDecoder(Detector):
    """FSD: full enumeration on ``rho`` levels, SIC below.

    Parameters
    ----------
    constellation:
        Symbol alphabet.
    rho:
        Number of fully-enumerated levels (``P^rho`` candidate paths).
        The classic choice for square systems is small (1 or 2).
    record_trace:
        Keep per-level :class:`BatchEvent` records.
    """

    name = "fsd"

    def __init__(
        self,
        constellation: Constellation,
        *,
        rho: int = 1,
        record_trace: bool = True,
    ) -> None:
        self.constellation = constellation
        self.rho = check_positive_int(rho, "rho")
        self.record_trace = record_trace
        self._qr: QRResult | None = None
        self._channel: np.ndarray | None = None
        self._prepared = False

    def prepare(self, channel: np.ndarray, noise_var: float = 0.0) -> None:
        channel = check_matrix(channel, "channel")
        if self.rho > channel.shape[1]:
            raise ValueError(
                f"rho={self.rho} exceeds the number of streams {channel.shape[1]}"
            )
        self._channel = channel
        # FSD conventionally uses an ordering that puts the *least*
        # reliable streams in the fully-enumerated levels; SQRD places the
        # weakest stream at the deepest (last-detected) level, and its
        # reverse property means the top tree levels hold strong streams.
        # We keep SQRD: it is the standard robustness ordering and the
        # detector stays sub-optimal either way.
        self._qr = sorted_qr(channel)
        self._prepared = True

    def detect(self, received: np.ndarray) -> DetectionResult:
        self._require_prepared()
        received = check_vector(
            received, "received", length=self._channel.shape[0]
        )
        timer = Timer()
        stats = DecodeStats()
        with timer:
            ybar = effective_receive(self._qr, received)
            evaluator = GemmEvaluator(self._qr.r, ybar, self.constellation)
            n_tx = evaluator.n_tx
            p = evaluator.order
            paths = np.empty((1, 0), dtype=np.int64)
            pds = np.zeros(1, dtype=float)
            for level in range(n_tx - 1, -1, -1):
                depth_from_root = n_tx - 1 - level
                child_pds = evaluator.expand(level, paths, pds)
                width = paths.shape[0]
                stats.nodes_expanded += width
                stats.nodes_generated += width * p
                if self.record_trace:
                    stats.batches.append(
                        BatchEvent(level=level, pool_size=width)
                    )
                if depth_from_root < self.rho:
                    # Full-expansion phase: keep every child.
                    keep_n = np.repeat(np.arange(width), p)
                    keep_c = np.tile(np.arange(p), width)
                    pds = child_pds.ravel().copy()
                else:
                    # SIC phase: single best child per candidate.
                    keep_n = np.arange(width)
                    keep_c = np.argmin(child_pds, axis=1)
                    pds = child_pds[keep_n, keep_c]
                paths = np.concatenate(
                    [paths[keep_n], keep_c[:, None].astype(np.int64)], axis=1
                )
                stats.max_list_size = max(stats.max_list_size, paths.shape[0])
            stats.leaves_reached += paths.shape[0]
            best = int(np.argmin(pds))
            stats.gemm_calls = evaluator.gemm_calls
            stats.gemm_flops = evaluator.gemm_flops + evaluator.norm_flops
            best_by_level = paths[best, ::-1].copy()
        stats.wall_time_s = timer.elapsed
        indices = self._qr.unpermute(best_by_level)
        symbols = self.constellation.map_indices(indices)
        bits = self.constellation.indices_to_bits(indices)
        residual = received - self._channel @ symbols
        metric = float(np.real(np.vdot(residual, residual)))
        return DetectionResult(
            indices=indices,
            symbols=symbols,
            bits=bits,
            metric=metric,
            stats=stats,
        )
