"""Detector shell around :class:`repro.core.traversal.TraversalEngine`.

Every tree-search detector in the zoo is the same machine: QR-prepare a
channel, map each received vector into the triangular domain, run a
search policy against an evaluation backend, and fold the winning path
back to antenna order. :class:`EngineDetector` implements that shell
once — ``prepare`` / ``detect`` / ``solve`` / ``decode_batch``, obs
spans and counters, per-frame wall-time accounting — and the concrete
detectors (:class:`~repro.detectors.sphere.SphereDecoder`,
:class:`~repro.detectors.sd_bfs.GemmBfsDecoder`,
:class:`~repro.detectors.geosphere.GeosphereDecoder`,
:class:`~repro.detectors.kbest.KBestDecoder`,
:class:`~repro.detectors.fsd.FixedComplexityDecoder`) reduce to a
policy choice plus a handful of class attributes.

A consequence the registry relies on: every engine detector gets the
cross-frame fused ``decode_batch`` path and emits the uniform
:class:`~repro.core.stats.BatchEvent` trace the FPGA pipeline simulator
replays — including K-best and FSD, which previously had neither.
"""

from __future__ import annotations

from contextlib import ExitStack

import numpy as np

from repro.core.compiled import resolve_engine, warmup_kernels
from repro.core.gemm import ChannelKernel
from repro.core.lattice import resolve_lattice
from repro.core.metric import resolve_metric
from repro.core.traversal import (
    LevelAccumulator,
    TraversalEngine,
    TraversalPolicy,
    build_engine,
)
from repro.detectors.base import DecodeStats, DetectionResult, Detector
from repro.mimo.preprocessing import (
    QRResult,
    effective_receive,
    qr_decompose,
    sorted_qr,
)
from repro.obs.metrics import current_metrics, exponential_buckets
from repro.obs.tracer import current_tracer
from repro.util.timing import Timer
from repro.util.validation import check_in, check_matrix, check_vector


#: Buckets for the frontier-peak histogram: frontier sizes are node
#: counts, so edges run 1, 2, 4, ... ~=1M rather than the default
#: seconds-scaled buckets.
FRONTIER_BUCKETS = exponential_buckets(1.0, 2.0, 21)


class EngineDetector(Detector):
    """Shared two-phase shell for traversal-engine detectors.

    Subclasses implement :meth:`_policy` (a fresh
    :class:`TraversalPolicy` built from current instance attributes, so
    post-construction attribute tweaks — e.g. tests setting
    ``decoder.max_nodes`` — keep working) and set the class attributes
    below to fix their trace vocabulary.
    """

    #: Prefix of every span/counter this detector emits (``sd``, ``bfs``…).
    trace_root = "sd"
    #: Extra outer span prefix for re-badged configurations (Geosphere
    #: wraps the inherited ``sd.*`` spans in ``geosphere.*`` ones so its
    #: time stays attributable in mixed-detector traces).
    wrapper_span: str | None = None
    #: ``DecodeStats`` fields emitted as ``<root>.<field>`` counters
    #: after each solve.
    counter_fields: tuple[str, ...] = ()
    #: Emit ``<root>.batch.frame_gemm_calls`` in ``decode_batch``.
    batch_frame_gemm_counter = False
    #: Column ordering for the QR step: ``"natural"`` (plain QR) or
    #: ``"sqrd"`` (sorted QR). May be overridden per instance.
    ordering = "natural"
    #: Partial-distance metric (name or instance) threaded to the
    #: evaluators, flop accounting and radius policy. May be overridden
    #: per instance.
    metric = "l2"
    #: Lattice representation the search runs over (name or instance);
    #: applied at :meth:`prepare` time. May be overridden per instance.
    lattice = "complex"
    #: Traversal engine (``"numpy"`` | ``"compiled"``); ``None`` defers
    #: to the ambient default (:func:`repro.core.compiled.use_engine`).
    #: May be overridden per instance or via :meth:`prepare`.
    engine: str | None = None

    constellation = None
    radius_policy = None
    record_trace = True

    @property
    def engine_name(self) -> str:
        """The engine that will actually run (availability-resolved).

        Resolved fresh on every access: a detector constructed with
        ``engine=None`` follows the ambient default, and a ``"compiled"``
        request degrades to ``"numpy"`` (with one warning) when Numba is
        unavailable — see :func:`repro.core.compiled.resolve_engine`.
        """
        return resolve_engine(self.engine)

    @property
    def metric_obj(self):
        """Resolved :class:`~repro.core.metric.PartialDistanceMetric`."""
        obj = getattr(self, "_metric_obj", None)
        if obj is None:
            obj = self._metric_obj = resolve_metric(self.metric)
        return obj

    @property
    def lattice_rep(self):
        """Resolved :class:`~repro.core.lattice.LatticeRepresentation`."""
        rep = getattr(self, "_lattice_rep", None)
        if rep is None:
            rep = self._lattice_rep = resolve_lattice(self.lattice)
        return rep

    @property
    def search_constellation(self):
        """Alphabet enumerated per tree level (PAM under real lattices)."""
        const = getattr(self, "_search_const", None)
        if const is None:
            const = self._search_const = self.lattice_rep.search_constellation(
                self.constellation
            )
        return const

    def _resolve_axes(self) -> None:
        """Eagerly resolve the metric/lattice axes.

        Called by subclass constructors so misconfiguration — an unknown
        name, or a real lattice over a non-square-QAM alphabet — fails
        at construction instead of at first ``prepare``.
        """
        self._metric_obj = resolve_metric(self.metric)
        self._lattice_rep = resolve_lattice(self.lattice)
        self._search_const = self._lattice_rep.search_constellation(
            self.constellation
        )

    def _policy(self) -> TraversalPolicy:
        raise NotImplementedError

    def _engine(self) -> TraversalEngine:
        return build_engine(
            self.engine_name,
            self.search_constellation,
            self._policy(),
            radius_policy=self.radius_policy,
            metric=self.metric_obj,
            record_trace=self.record_trace,
        )

    def _detect_span_args(self) -> dict:
        return {"detector": self.name}

    def _check_channel(self, channel: np.ndarray) -> None:
        """Subclass hook for extra channel validation (e.g. FSD's rho)."""

    # ------------------------------------------------------------------
    # Detector protocol
    # ------------------------------------------------------------------

    def prepare(
        self,
        channel: np.ndarray,
        noise_var: float = 0.0,
        *,
        engine: str | None = None,
    ) -> None:
        channel = check_matrix(channel, "channel")
        if noise_var < 0:
            raise ValueError(f"noise_var must be non-negative, got {noise_var}")
        if engine is not None:
            # Pin the engine axis for this detector from here on (the
            # per-prepare override the registry/CLI flow threads down).
            self.engine = check_in(engine, "engine", ("numpy", "compiled"))
        self._check_channel(channel)
        self._channel = channel
        # The lattice representation decides which system the QR (and
        # therefore the whole tree search) runs on: the complex channel
        # itself, or its 2N x 2M real decomposition. The complex
        # representation is a strict identity — same arrays, same ops.
        rep = self.lattice_rep
        search_channel = rep.map_channel(channel)
        self._qr: QRResult = (
            sorted_qr(search_channel)
            if self.ordering == "sqrd"
            else qr_decompose(search_channel)
        )
        # One per-channel kernel for the whole fading block: R is shared
        # by every frame, so triangularity validation and the per-level
        # diag/row tables are computed here once instead of per frame.
        self._kernel = ChannelKernel(
            self._qr.r, self.search_constellation, metric=self.metric_obj
        )
        self._noise_var = rep.scale_noise(noise_var)
        if self.engine_name == "compiled":
            # First-call JIT compilation happens here, outside every
            # timed region (gemm_time_s / benchmarks stay compile-free).
            warmup_kernels()
        self._prepared = True

    def detect(self, received: np.ndarray) -> DetectionResult:
        self._require_prepared()
        received = check_vector(
            received, "received", length=self._channel.shape[0]
        )
        tracer = current_tracer()
        timer = Timer()
        with ExitStack() as spans:
            if self.wrapper_span is not None:
                spans.enter_context(tracer.span(f"{self.wrapper_span}.detect"))
            spans.enter_context(
                tracer.span(
                    f"{self.trace_root}.detect", **self._detect_span_args()
                )
            )
            with timer:
                ybar = effective_receive(
                    self._qr, self.lattice_rep.map_received(received)
                )
                incumbent, _bound, stats = self.solve(
                    self._qr.r, ybar, self._noise_var
                )
        stats.wall_time_s = timer.elapsed
        metrics = current_metrics()
        if metrics.enabled:
            metrics.counter("detector.frames").inc(1, detector=self.name)
            metrics.histogram("detector.decode_seconds").observe(
                timer.elapsed, detector=self.name
            )
        return self._fold_back(received, incumbent, stats)

    def solve(
        self,
        r: np.ndarray,
        ybar: np.ndarray,
        noise_var: float = 0.0,
    ) -> tuple[np.ndarray, float, DecodeStats]:
        """Decode a pre-triangularised system ``min ||ybar - R s||^2``.

        Lower-level entry point than :meth:`detect`: no QR, no
        permutation handling — useful when the caller owns the
        preprocessing (e.g. the reduced-precision ablation quantises R
        and ybar itself).

        Returns ``(indices_by_level, reduced_metric, stats)`` where
        ``indices_by_level[k]`` is the constellation index of level ``k``.
        """
        stats = DecodeStats()
        tracer = current_tracer()
        metrics = current_metrics()
        # Reuse the prepare-time channel kernel only when the caller is
        # decoding against the prepared factor itself (detect does);
        # external callers may pass a different R (e.g. the quantised-R
        # ablation), which gets its own validated kernel.
        kernel = (
            self._kernel
            if getattr(self, "_prepared", False) and r is self._qr.r
            else None
        )
        engine = self._engine()
        if metrics.enabled:
            engine.level_acc = LevelAccumulator()
        incumbent, bound = engine.solve(
            r, ybar, noise_var, stats, tracer, kernel=kernel
        )
        if tracer.enabled:
            for name in self.counter_fields:
                tracer.count(
                    f"{self.trace_root}.{name}", getattr(stats, name)
                )
        if metrics.enabled:
            self._flush_traversal_metrics(metrics, engine.level_acc, [stats])
        return incumbent, bound, stats

    def decode_batch(self, received: np.ndarray) -> list[DetectionResult]:
        """Decode ``B`` received vectors with cross-frame fused GEMMs.

        All rows are decoded against the *prepared* channel (the
        block-fading assumption), so every frame shares the triangular
        factor and their same-level node pools stack into single
        :class:`~repro.core.gemm.BatchedGemmEvaluator` calls — the
        paper's BLAS-2 -> BLAS-3 refactor applied across frames. Each
        frame's search runs its own unmodified schedule in lockstep
        (:func:`~repro.core.lockstep.drive_lockstep`), so the returned
        decisions, metrics and per-frame search statistics are
        **bit-identical** to calling :meth:`detect` per row; only
        ``wall_time_s`` differs (the batch's wall time split evenly, as
        per-frame timing is not separable inside a fused GEMM).
        """
        self._require_prepared()
        received = np.asarray(received)
        if received.ndim != 2 or received.shape[1] != self._channel.shape[0]:
            raise ValueError(
                f"received must have shape (B, {self._channel.shape[0]}), "
                f"got {received.shape}"
            )
        if received.shape[0] == 0:
            return []
        n_frames = received.shape[0]
        tracer = current_tracer()
        timer = Timer()
        stats_list = [DecodeStats() for _ in range(n_frames)]
        with ExitStack() as spans:
            if self.wrapper_span is not None:
                spans.enter_context(
                    tracer.span(
                        f"{self.wrapper_span}.decode_batch", frames=n_frames
                    )
                )
            spans.enter_context(
                tracer.span(
                    f"{self.trace_root}.decode_batch",
                    detector=self.name,
                    frames=n_frames,
                )
            )
            with timer:
                rep = self.lattice_rep
                ybars = np.stack(
                    [
                        effective_receive(self._qr, rep.map_received(row))
                        for row in received
                    ]
                )
                engine = self._engine()
                metrics = current_metrics()
                if metrics.enabled:
                    engine.level_acc = LevelAccumulator()
                outcomes, backend = engine.solve_batch(
                    self._qr.r, ybars, self._noise_var, stats_list,
                    kernel=self._kernel,
                )
        if metrics.enabled:
            self._flush_traversal_metrics(
                metrics, engine.level_acc, stats_list, batch_seconds=timer.elapsed
            )
        if tracer.enabled:
            tracer.count(f"{self.trace_root}.batch.frames", n_frames)
            tracer.count(
                f"{self.trace_root}.batch.fused_gemm_calls",
                backend.fused_gemm_calls,
            )
            if self.batch_frame_gemm_counter:
                tracer.count(
                    f"{self.trace_root}.batch.frame_gemm_calls",
                    sum(st.gemm_calls for st in stats_list),
                )
        results: list[DetectionResult] = []
        per_frame_s = timer.elapsed / n_frames
        for f in range(n_frames):
            incumbent, _bound = outcomes[f]
            stats = stats_list[f]
            stats.wall_time_s = per_frame_s
            results.append(self._fold_back(received[f], incumbent, stats))
        return results

    # ------------------------------------------------------------------

    def _flush_traversal_metrics(
        self, metrics, acc, stats_list, *, batch_seconds: float | None = None
    ) -> None:
        """Fold one solve/batch's traversal accumulator into the registry.

        ``acc`` is the engine's :class:`LevelAccumulator` collected on
        the hot path; here — once per solve, off the hot path — it
        becomes per-level labelled counters, plus the frontier-peak
        histogram and (for batches) per-frame decode seconds. Per-level
        *generated* is ``nodes * order`` (every expansion emits one
        child per constellation point); prune *rate* per level is
        derived at read time as ``pruned / generated``.
        """
        det = self.name
        if acc is not None:
            nodes = metrics.counter("traversal.nodes_expanded")
            expansions = metrics.counter("traversal.expansions")
            generated = metrics.counter("traversal.nodes_generated")
            pruned = metrics.counter("traversal.nodes_pruned")
            order = self.search_constellation.order
            for level, n_exp in enumerate(acc.exps):
                n_pruned = acc.pruned[level]
                if not n_exp and not n_pruned:
                    continue
                lvl = str(level)
                n_nodes = acc.nodes[level]
                nodes.inc(n_nodes, detector=det, level=lvl)
                expansions.inc(n_exp, detector=det, level=lvl)
                generated.inc(n_nodes * order, detector=det, level=lvl)
                if n_pruned:
                    pruned.inc(n_pruned, detector=det, level=lvl)
        frontier = metrics.histogram(
            "traversal.frontier_peak", edges=FRONTIER_BUCKETS
        )
        for stats in stats_list:
            frontier.observe(stats.max_list_size, detector=det)
        if batch_seconds is not None:
            n = len(stats_list)
            metrics.counter("detector.frames").inc(n, detector=det)
            metrics.histogram("detector.decode_seconds").observe(
                batch_seconds / max(n, 1), detector=det
            )

    def _fold_back(
        self,
        received: np.ndarray,
        incumbent: np.ndarray,
        stats: DecodeStats,
    ) -> DetectionResult:
        """Map a tree-level decision back to antenna order + true metric."""
        # ``incumbent`` is indexed by tree level == factorised column;
        # map back to the original antenna order (still in the lattice
        # representation's column layout), then fold real-lattice PAM
        # pairs back to one QAM index per antenna (identity for the
        # complex representation).
        indices = self._qr.unpermute(incumbent)
        indices = self.lattice_rep.fold_indices(
            indices, self._channel.shape[1], self.constellation
        )
        symbols = self.constellation.map_indices(indices)
        bits = self.constellation.indices_to_bits(indices)
        residual = received - self._channel @ symbols
        metric = float(np.real(np.vdot(residual, residual)))
        return DetectionResult(
            indices=indices,
            symbols=symbols,
            bits=bits,
            metric=metric,
            stats=stats,
        )
