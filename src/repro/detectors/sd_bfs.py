"""GEMM-based Breadth-First sphere decoder — the GPU baseline of [1].

Arfaoui et al. (the approach this paper compares against in Fig. 11)
traverse the SD tree level-synchronously: every surviving node of level
``k`` is expanded in one huge GEMM, maximising dependence-free
parallelism for the GPU. The price (the paper's central argument) is
that the sphere radius cannot tighten until the *entire* tree has been
swept to the leaves, so the number of explored nodes is orders of
magnitude larger than with leaf-first strategies — Best-FS visits "less
than 1% of the number of explored nodes" (section IV-F).

The sweep itself is :class:`~repro.core.traversal.BfsPolicy`: the whole
frontier lives in flat arrays and each level is one
:class:`ExpandRequest`, so the :class:`~repro.core.stats.BatchEvent`
trace has exactly one event per level with ``pool_size`` = frontier
width — precisely the workload shape the GPU cost model expects. This
class is the detector shell binding that policy to plain-QR
preprocessing and the ``bfs.*`` obs vocabulary.
"""

from __future__ import annotations

from repro.core.compiled import ENGINES
from repro.core.radius import NoiseScaledRadius, RadiusPolicy
from repro.core.traversal import BfsPolicy, TraversalPolicy
from repro.detectors.engine import EngineDetector
from repro.mimo.constellation import Constellation
from repro.util.validation import check_in, check_positive_int


class GemmBfsDecoder(EngineDetector):
    """Level-synchronous GEMM sphere decoder (the [1]/GPU strategy).

    Parameters
    ----------
    constellation:
        Symbol alphabet.
    radius_policy:
        Initial radius; BFS relies on it for all its pruning, so the
        default is the statistical :class:`NoiseScaledRadius`. If a level
        ends with an empty frontier the radius escalates and the sweep
        restarts.
    max_frontier:
        Optional cap on the surviving frontier per level (K-best style
        truncation). ``None`` keeps every in-sphere node, as in [1] —
        exact *within the sphere* but memory-hungry for 16-QAM.
    record_trace:
        Keep per-level :class:`BatchEvent` records.
    """

    name = "sphere-gemm-bfs"
    trace_root = "bfs"
    counter_fields = (
        "nodes_expanded",
        "nodes_pruned",
        "leaves_reached",
        "gemm_calls",
    )

    def __init__(
        self,
        constellation: Constellation,
        *,
        radius_policy: RadiusPolicy | None = None,
        max_frontier: int | None = None,
        record_trace: bool = True,
        engine: str | None = None,
    ) -> None:
        self.constellation = constellation
        self.radius_policy = radius_policy or NoiseScaledRadius(alpha=2.0)
        self.max_frontier = (
            None
            if max_frontier is None
            else check_positive_int(max_frontier, "max_frontier")
        )
        self.record_trace = record_trace
        self.engine = (
            None if engine is None else check_in(engine, "engine", ENGINES)
        )
        self._qr = None
        self._channel = None
        self._noise_var = 0.0
        self._prepared = False

    def _policy(self) -> TraversalPolicy:
        return BfsPolicy(max_frontier=self.max_frontier)
