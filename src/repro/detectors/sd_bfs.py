"""GEMM-based Breadth-First sphere decoder — the GPU baseline of [1].

Arfaoui et al. (the approach this paper compares against in Fig. 11)
traverse the SD tree level-synchronously: every surviving node of level
``k`` is expanded in one huge GEMM, maximising dependence-free
parallelism for the GPU. The price (the paper's central argument) is
that the sphere radius cannot tighten until the *entire* tree has been
swept to the leaves, so the number of explored nodes is orders of
magnitude larger than with leaf-first strategies — Best-FS visits "less
than 1% of the number of explored nodes" (section IV-F).

The implementation keeps the whole frontier in flat arrays and performs
one :meth:`GemmEvaluator.expand` per level, so its
:class:`~repro.detectors.base.BatchEvent` trace has exactly one event per
level with ``pool_size`` = frontier width — precisely the workload shape
the GPU cost model expects.
"""

from __future__ import annotations

import numpy as np

from repro.core.gemm import (
    FLOPS_PER_CMAC,
    FLOPS_PER_NORM,
    BatchedGemmEvaluator,
    GemmEvaluator,
)
from repro.core.lockstep import ExpandRequest, drive_lockstep, drive_serial
from repro.core.radius import NoiseScaledRadius, RadiusPolicy, babai_point
from repro.detectors.base import BatchEvent, DecodeStats, DetectionResult, Detector
from repro.mimo.constellation import Constellation
from repro.mimo.preprocessing import QRResult, effective_receive, qr_decompose
from repro.obs.tracer import NULL_TRACER, current_tracer
from repro.util.timing import Timer
from repro.util.validation import check_matrix, check_positive_int, check_vector


class GemmBfsDecoder(Detector):
    """Level-synchronous GEMM sphere decoder (the [1]/GPU strategy).

    Parameters
    ----------
    constellation:
        Symbol alphabet.
    radius_policy:
        Initial radius; BFS relies on it for all its pruning, so the
        default is the statistical :class:`NoiseScaledRadius`. If a level
        ends with an empty frontier the radius escalates and the sweep
        restarts.
    max_frontier:
        Optional cap on the surviving frontier per level (K-best style
        truncation). ``None`` keeps every in-sphere node, as in [1] —
        exact *within the sphere* but memory-hungry for 16-QAM.
    record_trace:
        Keep per-level :class:`BatchEvent` records.
    """

    name = "sphere-gemm-bfs"

    def __init__(
        self,
        constellation: Constellation,
        *,
        radius_policy: RadiusPolicy | None = None,
        max_frontier: int | None = None,
        record_trace: bool = True,
    ) -> None:
        self.constellation = constellation
        self.radius_policy = radius_policy or NoiseScaledRadius(alpha=2.0)
        self.max_frontier = (
            None
            if max_frontier is None
            else check_positive_int(max_frontier, "max_frontier")
        )
        self.record_trace = record_trace
        self._qr: QRResult | None = None
        self._channel: np.ndarray | None = None
        self._noise_var = 0.0
        self._prepared = False
        # Ambient tracer snapshot, refreshed per detect() call.
        self._tracer = NULL_TRACER

    def prepare(self, channel: np.ndarray, noise_var: float = 0.0) -> None:
        channel = check_matrix(channel, "channel")
        if noise_var < 0:
            raise ValueError(f"noise_var must be non-negative, got {noise_var}")
        self._channel = channel
        self._qr = qr_decompose(channel)
        self._noise_var = float(noise_var)
        self._prepared = True

    def _sweep(
        self,
        n_tx: int,
        radius_sq: float,
        stats: DecodeStats,
        tracer,
    ):
        """One full root-to-leaves BFS sweep under a fixed radius.

        Search generator (see :mod:`repro.core.lockstep`): yields one
        :class:`ExpandRequest` per level and receives the child PDs.
        Returns ``(best_indices_by_level, best_metric)`` or
        ``(None, inf)`` when the sphere is empty.
        """
        p = self.constellation.order
        # Frontier state: (F, depth) root-first index paths + (F,) PDs.
        paths = np.empty((1, 0), dtype=np.int64)
        pds = np.zeros(1, dtype=float)
        for level in range(n_tx - 1, -1, -1):
            with tracer.span("bfs.level", level=level, frontier=paths.shape[0]):
                child_pds = yield ExpandRequest(level, paths, pds)  # (F, P)
            frontier = paths.shape[0]
            stats.nodes_expanded += frontier
            stats.nodes_generated += frontier * p
            stats.gemm_calls += 1
            depth = n_tx - 1 - level
            if depth:
                stats.gemm_flops += FLOPS_PER_CMAC * frontier * depth
            stats.gemm_flops += FLOPS_PER_NORM * frontier * p
            if self.record_trace:
                stats.batches.append(
                    BatchEvent(level=level, pool_size=frontier)
                )
            keep_n, keep_c = np.nonzero(child_pds < radius_sq)
            stats.nodes_pruned += frontier * p - keep_n.size
            if keep_n.size == 0:
                return None, float("inf")
            new_pds = child_pds[keep_n, keep_c]
            if self.max_frontier is not None and keep_n.size > self.max_frontier:
                # K-best truncation: keep the lowest-PD survivors.
                top = np.argpartition(new_pds, self.max_frontier)[
                    : self.max_frontier
                ]
                keep_n, keep_c, new_pds = keep_n[top], keep_c[top], new_pds[top]
                stats.truncated += 1
            paths = np.concatenate(
                [paths[keep_n], keep_c[:, None].astype(np.int64)], axis=1
            )
            pds = new_pds
            stats.max_list_size = max(stats.max_list_size, paths.shape[0])
        stats.leaves_reached += paths.shape[0]
        best = int(np.argmin(pds))
        stats.radius_updates += 1
        stats.radius_trace.append(float(pds[best]))
        # paths are root-first (level M-1 .. 0); flip to ascending level.
        return paths[best, ::-1].copy(), float(pds[best])

    def _solve_gen(self, r, ybar, noise_var, stats, tracer):
        """Full solve (sweep + radius escalation) as a search generator.

        Returns ``(indices_by_level, reduced_metric)``. Pass
        ``NULL_TRACER`` when interleaving several generators under
        lockstep batching (nested spans from different frames would
        corrupt the span stack).
        """
        n_tx = int(r.shape[1])
        init = self.radius_policy.initial(
            r, ybar, self.constellation, float(noise_var)
        )
        radius_sq = float(init.radius_sq)
        stats.radius_trace.append(radius_sq)
        best, metric = yield from self._sweep(n_tx, radius_sq, stats, tracer)
        while best is None and self.radius_policy.can_escalate():
            radius_sq *= self.radius_policy.escalation_factor
            stats.radius_trace.append(radius_sq)
            best, metric = yield from self._sweep(n_tx, radius_sq, stats, tracer)
        if best is None:
            best, metric = babai_point(r, ybar, self.constellation)
            stats.truncated += 1
        return best, metric

    def detect(self, received: np.ndarray) -> DetectionResult:
        self._require_prepared()
        received = check_vector(
            received, "received", length=self._channel.shape[0]
        )
        tracer = self._tracer = current_tracer()
        timer = Timer()
        stats = DecodeStats()
        with tracer.span("bfs.detect", detector=self.name):
            with timer:
                ybar = effective_receive(self._qr, received)
                evaluator = GemmEvaluator(self._qr.r, ybar, self.constellation)
                best, metric = drive_serial(
                    self._solve_gen(
                        self._qr.r, ybar, self._noise_var, stats, tracer
                    ),
                    evaluator,
                )
        if tracer.enabled:
            tracer.count("bfs.nodes_expanded", stats.nodes_expanded)
            tracer.count("bfs.nodes_pruned", stats.nodes_pruned)
            tracer.count("bfs.leaves_reached", stats.leaves_reached)
            tracer.count("bfs.gemm_calls", stats.gemm_calls)
        stats.wall_time_s = timer.elapsed
        indices = self._qr.unpermute(best)
        symbols = self.constellation.map_indices(indices)
        bits = self.constellation.indices_to_bits(indices)
        residual = received - self._channel @ symbols
        true_metric = float(np.real(np.vdot(residual, residual)))
        return DetectionResult(
            indices=indices,
            symbols=symbols,
            bits=bits,
            metric=true_metric,
            stats=stats,
        )

    def decode_batch(self, received: np.ndarray) -> list[DetectionResult]:
        """Decode ``B`` received vectors with cross-frame fused GEMMs.

        The BFS frontier sweeps of all frames run in lockstep
        (:func:`~repro.core.lockstep.drive_lockstep`): same-level
        frontiers stack into one :class:`BatchedGemmEvaluator` call, so
        the per-level GEMMs grow ``B`` times taller — the workload shape
        the GPU cost model favours. Decisions, metrics and per-frame
        stats are bit-identical to per-row :meth:`detect`; only
        ``wall_time_s`` differs (batch wall time split evenly).
        """
        self._require_prepared()
        received = np.asarray(received)
        if received.ndim != 2 or received.shape[1] != self._channel.shape[0]:
            raise ValueError(
                f"received must have shape (B, {self._channel.shape[0]}), "
                f"got {received.shape}"
            )
        if received.shape[0] == 0:
            return []
        n_frames = received.shape[0]
        tracer = current_tracer()
        timer = Timer()
        stats_list = [DecodeStats() for _ in range(n_frames)]
        with tracer.span(
            "bfs.decode_batch", detector=self.name, frames=n_frames
        ):
            with timer:
                ybars = np.stack(
                    [effective_receive(self._qr, row) for row in received]
                )
                evaluator = BatchedGemmEvaluator(
                    self._qr.r, ybars, self.constellation
                )
                searches = [
                    self._solve_gen(
                        self._qr.r,
                        ybars[f],
                        self._noise_var,
                        stats_list[f],
                        NULL_TRACER,
                    )
                    for f in range(n_frames)
                ]
                outcomes = drive_lockstep(searches, evaluator)
        if tracer.enabled:
            tracer.count("bfs.batch.frames", n_frames)
            tracer.count(
                "bfs.batch.fused_gemm_calls", evaluator.fused_gemm_calls
            )
        results: list[DetectionResult] = []
        per_frame_s = timer.elapsed / n_frames
        for f in range(n_frames):
            best, _metric = outcomes[f]
            stats = stats_list[f]
            stats.wall_time_s = per_frame_s
            indices = self._qr.unpermute(best)
            symbols = self.constellation.map_indices(indices)
            bits = self.constellation.indices_to_bits(indices)
            residual = received[f] - self._channel @ symbols
            true_metric = float(np.real(np.vdot(residual, residual)))
            results.append(
                DetectionResult(
                    indices=indices,
                    symbols=symbols,
                    bits=bits,
                    metric=true_metric,
                    stats=stats,
                )
            )
        return results
