"""GEMM-based Breadth-First sphere decoder — the GPU baseline of [1].

Arfaoui et al. (the approach this paper compares against in Fig. 11)
traverse the SD tree level-synchronously: every surviving node of level
``k`` is expanded in one huge GEMM, maximising dependence-free
parallelism for the GPU. The price (the paper's central argument) is
that the sphere radius cannot tighten until the *entire* tree has been
swept to the leaves, so the number of explored nodes is orders of
magnitude larger than with leaf-first strategies — Best-FS visits "less
than 1% of the number of explored nodes" (section IV-F).

The implementation keeps the whole frontier in flat arrays and performs
one :meth:`GemmEvaluator.expand` per level, so its
:class:`~repro.detectors.base.BatchEvent` trace has exactly one event per
level with ``pool_size`` = frontier width — precisely the workload shape
the GPU cost model expects.
"""

from __future__ import annotations

import numpy as np

from repro.core.gemm import GemmEvaluator
from repro.core.radius import NoiseScaledRadius, RadiusPolicy, babai_point
from repro.detectors.base import BatchEvent, DecodeStats, DetectionResult, Detector
from repro.mimo.constellation import Constellation
from repro.mimo.preprocessing import QRResult, effective_receive, qr_decompose
from repro.obs.tracer import NULL_TRACER, current_tracer
from repro.util.timing import Timer
from repro.util.validation import check_matrix, check_positive_int, check_vector


class GemmBfsDecoder(Detector):
    """Level-synchronous GEMM sphere decoder (the [1]/GPU strategy).

    Parameters
    ----------
    constellation:
        Symbol alphabet.
    radius_policy:
        Initial radius; BFS relies on it for all its pruning, so the
        default is the statistical :class:`NoiseScaledRadius`. If a level
        ends with an empty frontier the radius escalates and the sweep
        restarts.
    max_frontier:
        Optional cap on the surviving frontier per level (K-best style
        truncation). ``None`` keeps every in-sphere node, as in [1] —
        exact *within the sphere* but memory-hungry for 16-QAM.
    record_trace:
        Keep per-level :class:`BatchEvent` records.
    """

    name = "sphere-gemm-bfs"

    def __init__(
        self,
        constellation: Constellation,
        *,
        radius_policy: RadiusPolicy | None = None,
        max_frontier: int | None = None,
        record_trace: bool = True,
    ) -> None:
        self.constellation = constellation
        self.radius_policy = radius_policy or NoiseScaledRadius(alpha=2.0)
        self.max_frontier = (
            None
            if max_frontier is None
            else check_positive_int(max_frontier, "max_frontier")
        )
        self.record_trace = record_trace
        self._qr: QRResult | None = None
        self._channel: np.ndarray | None = None
        self._noise_var = 0.0
        self._prepared = False
        # Ambient tracer snapshot, refreshed per detect() call.
        self._tracer = NULL_TRACER

    def prepare(self, channel: np.ndarray, noise_var: float = 0.0) -> None:
        channel = check_matrix(channel, "channel")
        if noise_var < 0:
            raise ValueError(f"noise_var must be non-negative, got {noise_var}")
        self._channel = channel
        self._qr = qr_decompose(channel)
        self._noise_var = float(noise_var)
        self._prepared = True

    def _sweep(
        self,
        evaluator: GemmEvaluator,
        radius_sq: float,
        stats: DecodeStats,
    ) -> tuple[np.ndarray | None, float]:
        """One full root-to-leaves BFS sweep under a fixed radius.

        Returns ``(best_indices_by_level, best_metric)`` or
        ``(None, inf)`` when the sphere is empty.
        """
        n_tx = evaluator.n_tx
        p = evaluator.order
        tracer = self._tracer
        # Frontier state: (F, depth) root-first index paths + (F,) PDs.
        paths = np.empty((1, 0), dtype=np.int64)
        pds = np.zeros(1, dtype=float)
        for level in range(n_tx - 1, -1, -1):
            with tracer.span("bfs.level", level=level, frontier=paths.shape[0]):
                child_pds = evaluator.expand(level, paths, pds)  # (F, P)
            frontier = paths.shape[0]
            stats.nodes_expanded += frontier
            stats.nodes_generated += frontier * p
            if self.record_trace:
                stats.batches.append(
                    BatchEvent(level=level, pool_size=frontier)
                )
            keep_n, keep_c = np.nonzero(child_pds < radius_sq)
            stats.nodes_pruned += frontier * p - keep_n.size
            if keep_n.size == 0:
                return None, float("inf")
            new_pds = child_pds[keep_n, keep_c]
            if self.max_frontier is not None and keep_n.size > self.max_frontier:
                # K-best truncation: keep the lowest-PD survivors.
                top = np.argpartition(new_pds, self.max_frontier)[
                    : self.max_frontier
                ]
                keep_n, keep_c, new_pds = keep_n[top], keep_c[top], new_pds[top]
                stats.truncated += 1
            paths = np.concatenate(
                [paths[keep_n], keep_c[:, None].astype(np.int64)], axis=1
            )
            pds = new_pds
            stats.max_list_size = max(stats.max_list_size, paths.shape[0])
        stats.leaves_reached += paths.shape[0]
        best = int(np.argmin(pds))
        stats.radius_updates += 1
        stats.radius_trace.append(float(pds[best]))
        # paths are root-first (level M-1 .. 0); flip to ascending level.
        return paths[best, ::-1].copy(), float(pds[best])

    def detect(self, received: np.ndarray) -> DetectionResult:
        self._require_prepared()
        received = check_vector(
            received, "received", length=self._channel.shape[0]
        )
        tracer = self._tracer = current_tracer()
        timer = Timer()
        stats = DecodeStats()
        with tracer.span("bfs.detect", detector=self.name):
            with timer:
                ybar = effective_receive(self._qr, received)
                evaluator = GemmEvaluator(self._qr.r, ybar, self.constellation)
                init = self.radius_policy.initial(
                    self._qr.r, ybar, self.constellation, self._noise_var
                )
                radius_sq = float(init.radius_sq)
                stats.radius_trace.append(radius_sq)
                best, metric = self._sweep(evaluator, radius_sq, stats)
                while best is None and self.radius_policy.can_escalate():
                    radius_sq *= self.radius_policy.escalation_factor
                    stats.radius_trace.append(radius_sq)
                    best, metric = self._sweep(evaluator, radius_sq, stats)
                if best is None:
                    best, metric = babai_point(
                        self._qr.r, ybar, self.constellation
                    )
                    stats.truncated += 1
                stats.gemm_calls = evaluator.gemm_calls
                stats.gemm_flops = evaluator.gemm_flops + evaluator.norm_flops
        if tracer.enabled:
            tracer.count("bfs.nodes_expanded", stats.nodes_expanded)
            tracer.count("bfs.nodes_pruned", stats.nodes_pruned)
            tracer.count("bfs.leaves_reached", stats.leaves_reached)
            tracer.count("bfs.gemm_calls", stats.gemm_calls)
        stats.wall_time_s = timer.elapsed
        indices = self._qr.unpermute(best)
        symbols = self.constellation.map_indices(indices)
        bits = self.constellation.indices_to_bits(indices)
        residual = received - self._channel @ symbols
        true_metric = float(np.real(np.vdot(residual, residual)))
        return DetectionResult(
            indices=indices,
            symbols=symbols,
            bits=bits,
            metric=true_metric,
            stats=stats,
        )
