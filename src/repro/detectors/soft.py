"""Soft-output (list) sphere detection: per-bit log-likelihood ratios.

Real deployments feed the detector's output into a channel decoder,
which wants *soft* information. The standard construction (Hochwald &
ten Brink's list sphere decoder) reuses exactly the machinery this
repository already has: enumerate the candidate leaves inside a sphere,
then form max-log APP LLRs per bit:

    LLR_b = ( min_{s in L, bit_b(s)=0} ||y - Hs||^2
            - min_{s in L, bit_b(s)=1} ||y - Hs||^2 ) / sigma^2

A positive LLR therefore means bit ``b`` is more likely **1**. When the
list contains no counter-hypothesis for some bit, the LLR is clamped to
``+-llr_clip`` (the usual practice).

The candidate list comes from one breadth-first in-sphere sweep
(:class:`~repro.detectors.sd_bfs.GemmBfsDecoder` machinery), whose
radius escalates until the list is non-empty; the hard decision is the
list's best entry — identical to the hard sphere decoder's answer
whenever the ML point is inside the sphere (guaranteed after
escalation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.gemm import GemmEvaluator
from repro.core.radius import NoiseScaledRadius, RadiusPolicy
from repro.detectors.base import BatchEvent, DecodeStats, DetectionResult, Detector
from repro.mimo.constellation import Constellation
from repro.mimo.preprocessing import QRResult, effective_receive, qr_decompose
from repro.util.timing import Timer
from repro.util.validation import check_matrix, check_positive_int, check_vector


@dataclass
class SoftDetectionResult:
    """Hard decision plus per-bit soft information."""

    hard: DetectionResult
    #: ``(n_tx * bits_per_symbol,)`` max-log LLRs; positive favours 1.
    llrs: np.ndarray
    #: Candidate-list size the LLRs were computed from.
    list_size: int


class SoftOutputSphereDetector(Detector):
    """List sphere decoder producing max-log APP LLRs.

    Parameters
    ----------
    constellation:
        Symbol alphabet.
    radius_policy:
        Sphere for the candidate list; a *larger* alpha gives richer
        lists and better-conditioned LLRs at more work. Escalates until
        at least one candidate exists.
    max_list:
        Keep at most this many best candidates per detection.
    llr_clip:
        Magnitude assigned when a bit has no counter-hypothesis in the
        list.
    """

    name = "sphere-soft"

    def __init__(
        self,
        constellation: Constellation,
        *,
        radius_policy: RadiusPolicy | None = None,
        max_list: int = 512,
        llr_clip: float = 50.0,
    ) -> None:
        self.constellation = constellation
        self.radius_policy = radius_policy or NoiseScaledRadius(alpha=4.0)
        self.max_list = check_positive_int(max_list, "max_list")
        if llr_clip <= 0:
            raise ValueError(f"llr_clip must be positive, got {llr_clip}")
        self.llr_clip = float(llr_clip)
        self._qr: QRResult | None = None
        self._channel: np.ndarray | None = None
        self._noise_var = 0.0
        self._prepared = False

    def prepare(self, channel: np.ndarray, noise_var: float = 0.0) -> None:
        channel = check_matrix(channel, "channel")
        if noise_var < 0:
            raise ValueError(f"noise_var must be non-negative, got {noise_var}")
        self._channel = channel
        self._qr = qr_decompose(channel)
        self._noise_var = float(noise_var)
        self._prepared = True

    # ------------------------------------------------------------------

    def _candidate_list(
        self, evaluator: GemmEvaluator, radius_sq: float, stats: DecodeStats
    ) -> tuple[np.ndarray, np.ndarray]:
        """In-sphere leaves: ``(paths (L, M) root-first, metrics (L,))``."""
        paths = np.empty((1, 0), dtype=np.int64)
        pds = np.zeros(1, dtype=float)
        n_tx = evaluator.n_tx
        p = evaluator.order
        for level in range(n_tx - 1, -1, -1):
            child_pds = evaluator.expand(level, paths, pds)
            stats.nodes_expanded += paths.shape[0]
            stats.nodes_generated += paths.shape[0] * p
            stats.batches.append(BatchEvent(level=level, pool_size=paths.shape[0]))
            keep_n, keep_c = np.nonzero(child_pds < radius_sq)
            stats.nodes_pruned += paths.shape[0] * p - keep_n.size
            if keep_n.size == 0:
                return np.empty((0, n_tx), dtype=np.int64), np.empty(0)
            new_pds = child_pds[keep_n, keep_c]
            if keep_n.size > self.max_list:
                top = np.argpartition(new_pds, self.max_list)[: self.max_list]
                keep_n, keep_c, new_pds = keep_n[top], keep_c[top], new_pds[top]
                stats.truncated += 1
            paths = np.concatenate(
                [paths[keep_n], keep_c[:, None].astype(np.int64)], axis=1
            )
            pds = new_pds
            stats.max_list_size = max(stats.max_list_size, paths.shape[0])
        stats.leaves_reached += paths.shape[0]
        return paths, pds

    def detect_soft(self, received: np.ndarray) -> SoftDetectionResult:
        """Hard decision + max-log LLRs for one received vector."""
        self._require_prepared()
        received = check_vector(
            received, "received", length=self._channel.shape[0]
        )
        timer = Timer()
        stats = DecodeStats()
        with timer:
            ybar = effective_receive(self._qr, received)
            evaluator = GemmEvaluator(self._qr.r, ybar, self.constellation)
            init = self.radius_policy.initial(
                self._qr.r, ybar, self.constellation, self._noise_var
            )
            radius_sq = float(init.radius_sq)
            stats.radius_trace.append(radius_sq)
            paths, metrics = self._candidate_list(evaluator, radius_sq, stats)
            while paths.shape[0] == 0:
                radius_sq *= 4.0
                stats.radius_trace.append(radius_sq)
                paths, metrics = self._candidate_list(evaluator, radius_sq, stats)
            stats.gemm_calls = evaluator.gemm_calls
            stats.gemm_flops = evaluator.gemm_flops + evaluator.norm_flops
            # Hard decision: list leader, back in original antenna order.
            best = int(np.argmin(metrics))
            indices = self._qr.unpermute(paths[best, ::-1].copy())
            # Candidate bit matrix in *original* order: (L, n_tx * b).
            n_tx = evaluator.n_tx
            level_indices = paths[:, ::-1]  # (L, n_tx) by level
            original = np.empty_like(level_indices)
            original[:, self._qr.permutation] = level_indices
            bits = self.constellation.labels[original].reshape(
                paths.shape[0], -1
            )  # (L, n_bits) booleans
            # Max-log LLR per bit, with clamping.
            sigma2 = self._noise_var if self._noise_var > 0 else 1.0
            n_bits = bits.shape[1]
            llrs = np.empty(n_bits)
            for b in range(n_bits):
                ones = metrics[bits[:, b]]
                zeros = metrics[~bits[:, b]]
                if ones.size and zeros.size:
                    llrs[b] = (zeros.min() - ones.min()) / sigma2
                elif ones.size:
                    llrs[b] = self.llr_clip
                else:
                    llrs[b] = -self.llr_clip
            np.clip(llrs, -self.llr_clip, self.llr_clip, out=llrs)
        stats.wall_time_s = timer.elapsed
        symbols = self.constellation.map_indices(indices)
        hard_bits = self.constellation.indices_to_bits(indices)
        residual = received - self._channel @ symbols
        hard = DetectionResult(
            indices=indices,
            symbols=symbols,
            bits=hard_bits,
            metric=float(np.real(np.vdot(residual, residual))),
            stats=stats,
        )
        return SoftDetectionResult(
            hard=hard, llrs=llrs, list_size=int(paths.shape[0])
        )

    def detect(self, received: np.ndarray) -> DetectionResult:
        """Hard-decision compatibility entry point."""
        return self.detect_soft(received).hard
