"""K-best sphere detection — the fixed-throughput hardware favourite.

A breadth-first sweep that keeps only the ``K`` lowest-PD nodes per
level. Unlike the exact SD its latency is data-independent (like the
FSD, section II-C), which is why commercial MIMO ASICs use it; unlike
the FSD its survivors are chosen adaptively per level, giving much
better BER for the same work. It is the natural middle point between
:class:`~repro.detectors.fsd.FixedComplexityDecoder` and the exact
:class:`~repro.detectors.sphere.SphereDecoder`, and — because each
level is one batched evaluation — it maps to the paper's GEMM engine
just as well as BFS does. The sweep is
:class:`~repro.core.traversal.KBestPolicy`; running through the shared
engine shell gives K-best the cross-frame fused ``decode_batch`` path
and ``kbest.*`` obs spans for free.
"""

from __future__ import annotations

from repro.core.compiled import ENGINES
from repro.core.traversal import KBestPolicy, TraversalPolicy
from repro.detectors.engine import EngineDetector
from repro.mimo.constellation import Constellation
from repro.util.validation import check_in, check_positive_int


class KBestDecoder(EngineDetector):
    """Per-level K-survivor breadth-first detector.

    Parameters
    ----------
    constellation:
        Symbol alphabet.
    k:
        Survivors kept per level. ``k >= P^M`` recovers exhaustive ML;
        small ``k`` trades BER for a hard workload bound. Typical
        hardware choices are 8–64.
    """

    name = "kbest"
    trace_root = "kbest"
    counter_fields = (
        "nodes_expanded",
        "nodes_pruned",
        "leaves_reached",
        "gemm_calls",
    )
    # SQRD ordering: detecting reliable streams first makes the
    # K-survivor truncation far less likely to drop the ML path.
    ordering = "sqrd"

    def __init__(
        self,
        constellation: Constellation,
        *,
        k: int = 16,
        metric: str = "l2",
        record_trace: bool = True,
        engine: str | None = None,
    ) -> None:
        self.constellation = constellation
        self.k = check_positive_int(k, "k")
        self.metric = metric
        self.record_trace = record_trace
        self.engine = (
            None if engine is None else check_in(engine, "engine", ENGINES)
        )
        self._resolve_axes()
        self._qr = None
        self._channel = None
        self._noise_var = 0.0
        self._prepared = False

    def _policy(self) -> TraversalPolicy:
        return KBestPolicy(k=self.k)
