"""K-best sphere detection — the fixed-throughput hardware favourite.

A breadth-first sweep that keeps only the ``K`` lowest-PD nodes per
level. Unlike the exact SD its latency is data-independent (like the
FSD, section II-C), which is why commercial MIMO ASICs use it; unlike
the FSD its survivors are chosen adaptively per level, giving much
better BER for the same work. It is the natural middle point between
:class:`~repro.detectors.fsd.FixedComplexityDecoder` and the exact
:class:`~repro.core.sphere_decoder.SphereDecoder`, and — because each
level is one batched evaluation — it maps to the paper's GEMM engine
just as well as BFS does.
"""

from __future__ import annotations

import numpy as np

from repro.core.gemm import GemmEvaluator
from repro.detectors.base import BatchEvent, DecodeStats, DetectionResult, Detector
from repro.mimo.constellation import Constellation
from repro.mimo.preprocessing import QRResult, effective_receive, sorted_qr
from repro.util.timing import Timer
from repro.util.validation import check_matrix, check_positive_int, check_vector


class KBestDecoder(Detector):
    """Per-level K-survivor breadth-first detector.

    Parameters
    ----------
    constellation:
        Symbol alphabet.
    k:
        Survivors kept per level. ``k >= P^M`` recovers exhaustive ML;
        small ``k`` trades BER for a hard workload bound. Typical
        hardware choices are 8–64.
    """

    name = "kbest"

    def __init__(
        self,
        constellation: Constellation,
        *,
        k: int = 16,
        record_trace: bool = True,
    ) -> None:
        self.constellation = constellation
        self.k = check_positive_int(k, "k")
        self.record_trace = record_trace
        self._qr: QRResult | None = None
        self._channel: np.ndarray | None = None
        self._prepared = False

    def prepare(self, channel: np.ndarray, noise_var: float = 0.0) -> None:
        channel = check_matrix(channel, "channel")
        self._channel = channel
        # SQRD ordering: detecting reliable streams first makes the
        # K-survivor truncation far less likely to drop the ML path.
        self._qr = sorted_qr(channel)
        self._prepared = True

    def detect(self, received: np.ndarray) -> DetectionResult:
        self._require_prepared()
        received = check_vector(
            received, "received", length=self._channel.shape[0]
        )
        timer = Timer()
        stats = DecodeStats()
        with timer:
            ybar = effective_receive(self._qr, received)
            evaluator = GemmEvaluator(self._qr.r, ybar, self.constellation)
            n_tx = evaluator.n_tx
            p = evaluator.order
            paths = np.empty((1, 0), dtype=np.int64)
            pds = np.zeros(1, dtype=float)
            for level in range(n_tx - 1, -1, -1):
                child_pds = evaluator.expand(level, paths, pds)
                width = paths.shape[0]
                stats.nodes_expanded += width
                stats.nodes_generated += width * p
                if self.record_trace:
                    stats.batches.append(BatchEvent(level=level, pool_size=width))
                flat = child_pds.ravel()
                keep = min(self.k, flat.size)
                if keep < flat.size:
                    chosen = np.argpartition(flat, keep)[:keep]
                    stats.nodes_pruned += flat.size - keep
                else:
                    chosen = np.arange(flat.size)
                keep_n, keep_c = np.divmod(chosen, p)
                paths = np.concatenate(
                    [paths[keep_n], keep_c[:, None].astype(np.int64)], axis=1
                )
                pds = flat[chosen]
                stats.max_list_size = max(stats.max_list_size, paths.shape[0])
            stats.leaves_reached += paths.shape[0]
            best = int(np.argmin(pds))
            best_by_level = paths[best, ::-1].copy()
            stats.radius_updates += 1
            stats.radius_trace.append(float(pds[best]))
            stats.gemm_calls = evaluator.gemm_calls
            stats.gemm_flops = evaluator.gemm_flops + evaluator.norm_flops
        stats.wall_time_s = timer.elapsed
        indices = self._qr.unpermute(best_by_level)
        symbols = self.constellation.map_indices(indices)
        bits = self.constellation.indices_to_bits(indices)
        residual = received - self._channel @ symbols
        metric = float(np.real(np.vdot(residual, residual)))
        return DetectionResult(
            indices=indices, symbols=symbols, bits=bits, metric=metric, stats=stats
        )
