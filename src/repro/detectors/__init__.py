"""Detector zoo: linear baselines, ML ground truth and tree-search decoders."""

from repro.detectors.base import Detector, DetectionResult, DecodeStats, BatchEvent
from repro.detectors.linear import ZeroForcingDetector, MMSEDetector, MRCDetector
from repro.detectors.ml import MLDetector
from repro.detectors.sd_bfs import GemmBfsDecoder
from repro.detectors.geosphere import GeosphereDecoder
from repro.detectors.fsd import FixedComplexityDecoder
from repro.detectors.soft import SoftOutputSphereDetector, SoftDetectionResult
from repro.detectors.sic import SICDetector
from repro.detectors.kbest import KBestDecoder
from repro.detectors.lr import LRZFDetector
from repro.detectors.real_sd import RealSphereDecoder

__all__ = [
    "Detector",
    "DetectionResult",
    "DecodeStats",
    "BatchEvent",
    "ZeroForcingDetector",
    "MMSEDetector",
    "MRCDetector",
    "MLDetector",
    "GemmBfsDecoder",
    "GeosphereDecoder",
    "FixedComplexityDecoder",
    "SoftOutputSphereDetector",
    "SoftDetectionResult",
    "SICDetector",
    "KBestDecoder",
    "LRZFDetector",
    "RealSphereDecoder",
]
