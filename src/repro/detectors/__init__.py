"""Detector zoo: linear baselines, ML ground truth and tree-search decoders.

Construction for experiments/CLI/Monte-Carlo goes through the
declarative registry (:mod:`repro.detectors.registry`): a
:class:`DetectorSpec` names a registered kind plus parameters and is
picklable across process pools. Direct class construction remains fine
for library use.
"""

from repro.detectors.base import Detector, DetectionResult, DecodeStats, BatchEvent
from repro.detectors.engine import EngineDetector
from repro.detectors.linear import ZeroForcingDetector, MMSEDetector, MRCDetector
from repro.detectors.ml import MLDetector
from repro.detectors.sphere import SphereDecoder
from repro.detectors.sd_bfs import GemmBfsDecoder
from repro.detectors.geosphere import GeosphereDecoder
from repro.detectors.fsd import FixedComplexityDecoder
from repro.detectors.soft import SoftOutputSphereDetector, SoftDetectionResult
from repro.detectors.sic import SICDetector
from repro.detectors.kbest import KBestDecoder
from repro.detectors.lr import LRZFDetector
from repro.detectors.real_sd import RealSphereDecoder
from repro.detectors.partitioned import PartitionedSphereDecoder
from repro.detectors.registry import (
    DetectorEntry,
    DetectorSpec,
    detector_entries,
    detector_entry,
    spec,
)

__all__ = [
    "Detector",
    "DetectionResult",
    "DecodeStats",
    "BatchEvent",
    "EngineDetector",
    "ZeroForcingDetector",
    "MMSEDetector",
    "MRCDetector",
    "MLDetector",
    "SphereDecoder",
    "GemmBfsDecoder",
    "GeosphereDecoder",
    "FixedComplexityDecoder",
    "SoftOutputSphereDetector",
    "SoftDetectionResult",
    "SICDetector",
    "KBestDecoder",
    "LRZFDetector",
    "RealSphereDecoder",
    "PartitionedSphereDecoder",
    "DetectorEntry",
    "DetectorSpec",
    "detector_entries",
    "detector_entry",
    "spec",
]
