"""Lattice-reduction-aided linear detection (LR-ZF).

Plain ZF slices each stream against the raw channel's axes; when the
channel is ill-conditioned the decision regions are badly skewed and
diversity collapses to 1. Slicing in an LLL-reduced basis fixes this:

1. real-decompose the system and map the PAM alphabet onto a shifted
   integer lattice:  ``x = scale * (2u - (L-1) 1)``, ``u in {0..L-1}^2M``;
2. LLL-reduce ``B = 2*scale*H_r`` into ``B_tilde = B T``;
3. zero-force and round in the reduced coordinates
   ``v = round(pinv(B_tilde) y')``;
4. map back ``u = T v``, clip to the alphabet box, re-assemble symbols.

LR-aided ZF achieves the full receive diversity of ML at linear cost —
it slots between MMSE and the tree searches in the detector hierarchy
and gives the repository a modern low-complexity baseline the paper's
introduction alludes to when discussing the complexity/BER trade-off.
"""

from __future__ import annotations

import numpy as np

from repro.core.lattice import lll_reduce
from repro.detectors.base import DetectionResult, Detector
from repro.mimo.constellation import Constellation
from repro.mimo.preprocessing import real_decomposition
from repro.util.validation import check_matrix, check_vector


class LRZFDetector(Detector):
    """Zero forcing in an LLL-reduced lattice basis.

    Only square-QAM constellations are supported (the real decomposition
    needs a per-dimension PAM alphabet).
    """

    name = "lr-zf"

    def __init__(self, constellation: Constellation, *, delta: float = 0.75) -> None:
        if not constellation.is_square_qam:
            raise ValueError(
                "LR-aided detection requires a square QAM constellation"
            )
        self.constellation = constellation
        self.delta = float(delta)
        self._channel: np.ndarray | None = None
        self._reduced_pinv: np.ndarray | None = None
        self._transform: np.ndarray | None = None
        self._h_real: np.ndarray | None = None
        self._prepared = False

    # The normalised QAM grid step over 2 (distance from level to level
    # midpoint): re/im parts live on scale*{-(L-1), ..., L-1, step 2}.
    @property
    def _scale(self) -> float:
        return float(1.0 / np.sqrt(2.0 * (self.constellation.order - 1) / 3.0))

    def prepare(self, channel: np.ndarray, noise_var: float = 0.0) -> None:
        channel = check_matrix(channel, "channel")
        if channel.shape[0] < channel.shape[1]:
            raise ValueError("LR-ZF needs n_rx >= n_tx")
        self._channel = channel
        h_real, _ = real_decomposition(channel, np.zeros(channel.shape[0], complex))
        self._h_real = h_real
        basis = 2.0 * self._scale * h_real
        result = lll_reduce(basis, delta=self.delta)
        self._reduced_pinv = np.linalg.pinv(result.reduced)
        self._transform = result.transform
        self._prepared = True

    def detect(self, received: np.ndarray) -> DetectionResult:
        self._require_prepared()
        received = check_vector(
            received, "received", length=self._channel.shape[0]
        )
        const = self.constellation
        side = int(round(np.sqrt(const.order)))
        scale = self._scale
        n_tx = self._channel.shape[1]
        y_real = np.concatenate([received.real, received.imag])
        # Shift the PAM box {-(L-1)..(L-1)}*scale onto u in {0..L-1}:
        # y' = y + scale*(L-1) * H_r @ 1.
        offset = scale * (side - 1) * (self._h_real @ np.ones(2 * n_tx))
        y_prime = y_real + offset
        v = np.rint(self._reduced_pinv @ y_prime)
        u = self._transform @ v.astype(np.int64)
        u = np.clip(u, 0, side - 1)
        # Reassemble complex symbols: u[:n_tx] are I levels, u[n_tx:] Q.
        i_lvl, q_lvl = u[:n_tx], u[n_tx:]
        indices = (i_lvl * side + q_lvl).astype(np.int64)
        symbols = const.map_indices(indices)
        bits = const.indices_to_bits(indices)
        residual = received - self._channel @ symbols
        metric = float(np.real(np.vdot(residual, residual)))
        return DetectionResult(
            indices=indices, symbols=symbols, bits=bits, metric=metric
        )
