"""Ordered successive interference cancellation (V-BLAST style).

The classic non-linear-but-polynomial detector between the linear
filters and the tree searches: detect the most reliable stream first
(SQRD ordering), slice it, subtract its contribution, repeat. Identical
to the Babai point of :func:`repro.core.radius.babai_point` computed on
the sorted QR — packaged as a :class:`Detector` so it can stand in BER
and timing comparisons (and it is exactly the "decision feedback" lower
anchor the sphere decoder's initial radius comes from).
"""

from __future__ import annotations

import numpy as np

from repro.core.radius import babai_point
from repro.detectors.base import DetectionResult, Detector
from repro.mimo.constellation import Constellation
from repro.mimo.preprocessing import QRResult, effective_receive, qr_decompose, sorted_qr
from repro.util.validation import check_in, check_matrix, check_vector


class SICDetector(Detector):
    """Decision-feedback detection with optional SQRD ordering.

    Parameters
    ----------
    constellation:
        Symbol alphabet.
    ordering:
        ``"sqrd"`` (V-BLAST-style reliability ordering, default) or
        ``"natural"`` (plain QR back-substitution).
    """

    name = "sic"

    def __init__(
        self, constellation: Constellation, *, ordering: str = "sqrd"
    ) -> None:
        self.constellation = constellation
        self.ordering = check_in(ordering, "ordering", ("natural", "sqrd"))
        self._qr: QRResult | None = None
        self._channel: np.ndarray | None = None
        self._prepared = False

    def prepare(self, channel: np.ndarray, noise_var: float = 0.0) -> None:
        channel = check_matrix(channel, "channel")
        self._channel = channel
        self._qr = (
            sorted_qr(channel) if self.ordering == "sqrd" else qr_decompose(channel)
        )
        self._prepared = True

    def detect(self, received: np.ndarray) -> DetectionResult:
        self._require_prepared()
        received = check_vector(
            received, "received", length=self._channel.shape[0]
        )
        ybar = effective_receive(self._qr, received)
        level_indices, _metric = babai_point(
            self._qr.r, ybar, self.constellation
        )
        indices = self._qr.unpermute(level_indices)
        symbols = self.constellation.map_indices(indices)
        bits = self.constellation.indices_to_bits(indices)
        residual = received - self._channel @ symbols
        metric = float(np.real(np.vdot(residual, residual)))
        return DetectionResult(
            indices=indices, symbols=symbols, bits=bits, metric=metric
        )
