"""GEMM-based sphere decoder with Best-First / sorted-DFS traversal.

This is the algorithm of the paper (Alg. 1 + section III): the SD search
tree is explored leaf-first — either globally best-first (a priority
queue on partial distance, the Geosphere-inspired strategy the paper
adopts) or depth-first with per-level PD-sorted child insertion (the LIFO
list of Fig. 3) — while node evaluation is batched into matrix-matrix
products (:class:`~repro.core.gemm.GemmEvaluator`, the compute-bound
refactor of Arfaoui et al.).

The traversal loops themselves live in :mod:`repro.core.traversal`
(:class:`~repro.core.traversal.BestFirstPolicy` /
:class:`~repro.core.traversal.DfsPolicy`); this class is the detector
shell binding a policy choice to the QR preprocessing, the radius
schedule and the obs vocabulary (``sd.*`` spans and counters).

Exactness
---------
Partial distances are sums of non-negative terms, so PD never decreases
along a path. With an infinite initial radius (or a Babai-seeded
incumbent) the search is exact maximum likelihood:

* Best-FS pops nodes in ascending PD; once the best frontier PD reaches
  the incumbent metric no unexplored leaf can beat it — terminate.
* Sorted-DFS only discards nodes whose PD already meets/exceeds the
  incumbent metric, which no descendant leaf can undercut.

Both facts are property-tested against brute force in
``tests/test_sphere_decoder_exactness.py``.

Instrumentation
---------------
Every expansion appends a :class:`~repro.core.stats.BatchEvent` to the
decode's :class:`~repro.core.stats.DecodeStats`. The FPGA pipeline
simulator replays those events through its module cycle models; the
CPU/GPU models consume the aggregate counters.

When an ambient :class:`repro.obs.Tracer` is installed
(:func:`repro.obs.use_tracer`), each decode additionally emits nested
spans (``sd.detect`` > ``sd.solve`` > ``sd.search``), ``sd.batch``
instants sampling the expansion timeline (pooled expansions always
record; single-node expansions every ``mark_stride``-th — exact counts
live in the metrics registry and ``DecodeStats``) and node/GEMM
counters. With no tracer installed the hot path pays one attribute
read and a boolean check per batch — see ``docs/observability.md``.
"""

from __future__ import annotations

from repro.core.compiled import ENGINES
from repro.core.enumeration import CHILD_ORDERS
from repro.core.radius import BabaiRadius, RadiusPolicy
from repro.core.traversal import BestFirstPolicy, DfsPolicy, TraversalPolicy
from repro.detectors.engine import EngineDetector
from repro.mimo.constellation import Constellation
from repro.util.validation import check_in, check_positive_int

# Validated at construction (not just inside the policies) so a bad
# configuration fails before any channel is prepared.
STRATEGIES = ("best-first", "dfs")
ORDERINGS = ("natural", "sqrd")


class SphereDecoder(EngineDetector):
    """The paper's GEMM-based leaf-first sphere decoder.

    Parameters
    ----------
    constellation:
        Symbol alphabet (4-QAM / 16-QAM in the paper's evaluation).
    strategy:
        ``"best-first"`` (global priority queue; default) or ``"dfs"``
        (LIFO with PD-sorted child insertion, Fig. 3). Both are exact.
    radius_policy:
        Initial-radius strategy; defaults to :class:`BabaiRadius`
        (exact, never erases, tight pruning).
    ordering:
        Column ordering for the QR step: ``"natural"`` (plain QR, as the
        paper) or ``"sqrd"`` (sorted QR, an ablation that tightens
        pruning further).
    pool_size:
        Best-FS only: up to this many same-level frontier nodes are
        popped together and evaluated in one GEMM batch. 1 recovers pure
        best-first; larger pools trade a little search discipline for
        bigger (more FPGA/GPU-friendly) GEMMs. Never affects exactness —
        only nodes already inside the sphere are pooled.
    child_ordering:
        ``"sorted"`` (Best-FS/Geosphere behaviour) or ``"natural"``; only
        observable under ``"dfs"``, where it fixes the stack push order.
    max_nodes:
        Optional safety cap on expanded nodes; when hit, the best
        incumbent so far is returned and ``stats.truncated`` is set.
    metric:
        Partial-distance metric: ``"l2"`` (exact ML, default) or
        ``"linf"`` (Seethaler & Bölcskei max/compare kernel — cheaper
        NORM stage, bounded BER loss).
    lattice:
        Lattice representation: ``"complex"`` (default), ``"real"``
        (stacked real decomposition) or ``"real-reordered"`` (Azzam &
        Ayanoglu interleaving). Real lattices need square QAM.
    record_trace:
        Keep the per-expansion :class:`BatchEvent` list in the stats.
    engine:
        Traversal engine: ``"numpy"`` (reference), ``"compiled"``
        (fused Numba kernels, bit-identical) or ``None`` (default) to
        follow the ambient default
        (:func:`repro.core.compiled.use_engine`).
    """

    name = "sphere-gemm"
    trace_root = "sd"
    counter_fields = (
        "nodes_expanded",
        "nodes_generated",
        "nodes_pruned",
        "leaves_reached",
        "gemm_calls",
        "gemm_flops",
    )
    batch_frame_gemm_counter = True

    def __init__(
        self,
        constellation: Constellation,
        *,
        strategy: str = "best-first",
        radius_policy: RadiusPolicy | None = None,
        ordering: str = "natural",
        pool_size: int = 8,
        child_ordering: str = "sorted",
        max_nodes: int | None = None,
        metric: str = "l2",
        lattice: str = "complex",
        record_trace: bool = True,
        engine: str | None = None,
    ) -> None:
        self.constellation = constellation
        self.strategy = check_in(strategy, "strategy", STRATEGIES)
        self.radius_policy = radius_policy or BabaiRadius()
        self.ordering = check_in(ordering, "ordering", ORDERINGS)
        self.pool_size = check_positive_int(pool_size, "pool_size")
        self.child_ordering = check_in(
            child_ordering, "child_ordering", CHILD_ORDERS
        )
        self.max_nodes = (
            None if max_nodes is None else check_positive_int(max_nodes, "max_nodes")
        )
        self.metric = metric
        self.lattice = lattice
        self.record_trace = record_trace
        self.engine = (
            None if engine is None else check_in(engine, "engine", ENGINES)
        )
        self._resolve_axes()
        self._qr = None
        self._channel = None
        self._noise_var = 0.0
        self._prepared = False

    def _policy(self) -> TraversalPolicy:
        if self.strategy == "best-first":
            return BestFirstPolicy(
                pool_size=self.pool_size, max_nodes=self.max_nodes
            )
        return DfsPolicy(
            child_ordering=self.child_ordering, max_nodes=self.max_nodes
        )

    def _detect_span_args(self) -> dict:
        return {"detector": self.name, "strategy": self.strategy}
