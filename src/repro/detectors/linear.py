"""Linear detectors: Maximum Ratio Combining, Zero Forcing, MMSE.

These are the low-complexity / poor-BER baselines of the paper's
introduction and Fig. 12. Each computes a linear equalising filter in
``prepare`` (amortised per channel block) and applies one matrix-vector
product plus slicing per ``detect``.
"""

from __future__ import annotations

import numpy as np

from repro.detectors.base import DetectionResult, Detector
from repro.mimo.constellation import Constellation
from repro.util.validation import check_matrix, check_vector


class _LinearDetector(Detector):
    """Shared scaffolding: filter matrix ``W`` so ``s_hat = slice(W y)``."""

    def __init__(self, constellation: Constellation) -> None:
        self.constellation = constellation
        self._channel: np.ndarray | None = None
        self._filter: np.ndarray | None = None
        self._prepared = False

    def _compute_filter(self, channel: np.ndarray, noise_var: float) -> np.ndarray:
        raise NotImplementedError

    def prepare(self, channel: np.ndarray, noise_var: float = 0.0) -> None:
        channel = check_matrix(channel, "channel")
        if noise_var < 0:
            raise ValueError(f"noise_var must be non-negative, got {noise_var}")
        self._channel = channel
        self._filter = self._compute_filter(channel, float(noise_var))
        self._prepared = True

    def detect(self, received: np.ndarray) -> DetectionResult:
        self._require_prepared()
        received = check_vector(
            received, "received", length=self._channel.shape[0]
        )
        estimate = self._filter @ received
        indices = self.constellation.nearest_indices(estimate)
        symbols = self.constellation.map_indices(indices)
        bits = self.constellation.indices_to_bits(indices)
        residual = received - self._channel @ symbols
        metric = float(np.real(np.vdot(residual, residual)))
        return DetectionResult(
            indices=indices, symbols=symbols, bits=bits, metric=metric
        )

    def detect_batch(self, received: np.ndarray) -> list[DetectionResult]:
        """Vectorised block detection: one GEMM for all vectors.

        Linear detection of a whole block is a single matrix-matrix
        product (`W @ Y^T`) plus vectorised slicing — the BLAS-3 shape
        the paper's refactor is all about. Equivalent to per-vector
        :meth:`detect`, just faster (verified in the tests).
        """
        self._require_prepared()
        received = np.asarray(received)
        if received.ndim != 2 or received.shape[1] != self._channel.shape[0]:
            raise ValueError(
                f"received must have shape (F, {self._channel.shape[0]}), "
                f"got {received.shape}"
            )
        estimates = received @ self._filter.T  # (F, n_tx) in one GEMM
        indices = self.constellation.nearest_indices(estimates)
        symbols = self.constellation.points[indices]
        residuals = received - symbols @ self._channel.T
        metrics = np.sum(np.abs(residuals) ** 2, axis=1)
        return [
            DetectionResult(
                indices=indices[i],
                symbols=symbols[i],
                bits=self.constellation.indices_to_bits(indices[i]),
                metric=float(metrics[i]),
            )
            for i in range(received.shape[0])
        ]


class ZeroForcingDetector(_LinearDetector):
    """Zero forcing: ``W = (H^H H)^{-1} H^H`` (the pseudo-inverse).

    Removes inter-stream interference completely at the cost of noise
    enhancement — the classic complexity/BER trade-off the paper cites.
    """

    name = "zf"

    def _compute_filter(self, channel: np.ndarray, noise_var: float) -> np.ndarray:
        return np.linalg.pinv(channel)


class MMSEDetector(_LinearDetector):
    """Linear MMSE: ``W = (H^H H + (sigma^2/Es) I)^{-1} H^H``.

    Balances interference suppression against noise enhancement; needs
    the noise variance at ``prepare`` time.
    """

    name = "mmse"

    def __init__(self, constellation: Constellation, es: float = 1.0) -> None:
        super().__init__(constellation)
        if es <= 0:
            raise ValueError(f"es must be positive, got {es}")
        self.es = float(es)

    def _compute_filter(self, channel: np.ndarray, noise_var: float) -> np.ndarray:
        n_tx = channel.shape[1]
        gram = np.conj(channel.T) @ channel
        reg = gram + (noise_var / self.es) * np.eye(n_tx)
        return np.linalg.solve(reg, np.conj(channel.T))


class MRCDetector(_LinearDetector):
    """Maximum ratio combining: per-stream matched filter.

    ``s_hat_i = slice(h_i^H y / ||h_i||^2)``. Ignores inter-stream
    interference entirely, hence the worst BER of the three — included
    because the paper lists it among the linear baselines (section I).
    """

    name = "mrc"

    def _compute_filter(self, channel: np.ndarray, noise_var: float) -> np.ndarray:
        norms = np.sum(np.abs(channel) ** 2, axis=0)
        if np.any(norms == 0):
            raise np.linalg.LinAlgError("channel has an all-zero column")
        return np.conj(channel.T) / norms[:, None]
