"""Geosphere-style exact depth-first sphere decoder (Fig. 12 baseline).

Geosphere (Nikitopoulos et al., SIGCOMM'14) is an exact depth-first
sphere decoder whose key trick is geometric (sort-free) Schnorr–Euchner
child enumeration; it was deployed on the Rice WARP radio platform. For
the purposes of the paper's Fig. 12 comparison what matters is its
*search schedule*: one node expanded at a time, children visited in
ascending-PD order, radius updated at each leaf — i.e. the sorted-DFS
strategy without GEMM batching.

We therefore realise it as a thin configuration of
:class:`~repro.detectors.sphere.SphereDecoder` (strategy ``"dfs"``,
pool size 1, infinite initial radius: exact ML), and the WARP cost model
in :mod:`repro.perfmodel` charges its node count at scalar
(non-batched) per-node cost — the memory-bound profile the paper says
the GEMM refactor eliminates. The shared engine path handles the
``detect``/``decode_batch`` plumbing; ``wrapper_span`` re-badges the
traces so Geosphere time is attributable in mixed-detector runs (the
inner ``sd.detect``/``sd.solve`` spans nest beneath ``geosphere.*``).
"""

from __future__ import annotations

from repro.core.radius import InfiniteRadius, RadiusPolicy
from repro.detectors.sphere import SphereDecoder
from repro.mimo.constellation import Constellation


class GeosphereDecoder(SphereDecoder):
    """Exact DFS sphere decoder with sorted (Schnorr–Euchner) enumeration."""

    name = "geosphere"
    wrapper_span = "geosphere"

    def __init__(
        self,
        constellation: Constellation,
        *,
        radius_policy: RadiusPolicy | None = None,
        max_nodes: int | None = None,
        record_trace: bool = True,
        engine: str | None = None,
    ) -> None:
        super().__init__(
            constellation,
            strategy="dfs",
            radius_policy=radius_policy or InfiniteRadius(),
            ordering="natural",
            pool_size=1,
            child_ordering="sorted",
            max_nodes=max_nodes,
            record_trace=record_trace,
            engine=engine,
        )
