"""Geosphere-style exact depth-first sphere decoder (Fig. 12 baseline).

Geosphere (Nikitopoulos et al., SIGCOMM'14) is an exact depth-first
sphere decoder whose key trick is geometric (sort-free) Schnorr–Euchner
child enumeration; it was deployed on the Rice WARP radio platform. For
the purposes of the paper's Fig. 12 comparison what matters is its
*search schedule*: one node expanded at a time, children visited in
ascending-PD order, radius updated at each leaf — i.e. the sorted-DFS
strategy without GEMM batching.

We therefore realise it as a thin configuration of
:class:`~repro.core.sphere_decoder.SphereDecoder` (strategy ``"dfs"``,
pool size 1, infinite initial radius: exact ML), and the WARP cost model
in :mod:`repro.perfmodel` charges its node count at scalar
(non-batched) per-node cost — the memory-bound profile the paper says
the GEMM refactor eliminates.
"""

from __future__ import annotations

import numpy as np

from repro.core.radius import InfiniteRadius, RadiusPolicy
from repro.core.sphere_decoder import SphereDecoder
from repro.detectors.base import DetectionResult
from repro.mimo.constellation import Constellation
from repro.obs.tracer import current_tracer


class GeosphereDecoder(SphereDecoder):
    """Exact DFS sphere decoder with sorted (Schnorr–Euchner) enumeration."""

    name = "geosphere"

    def detect(self, received: np.ndarray) -> DetectionResult:
        # Wrap the inherited decode in a detector-specific span so
        # Geosphere time is attributable in mixed-detector traces (the
        # inner ``sd.detect``/``sd.solve`` spans nest beneath it).
        with current_tracer().span("geosphere.detect"):
            return super().detect(received)

    def decode_batch(self, received: np.ndarray) -> list[DetectionResult]:
        with current_tracer().span(
            "geosphere.decode_batch", frames=int(np.asarray(received).shape[0])
        ):
            return super().decode_batch(received)

    def __init__(
        self,
        constellation: Constellation,
        *,
        radius_policy: RadiusPolicy | None = None,
        max_nodes: int | None = None,
        record_trace: bool = True,
    ) -> None:
        super().__init__(
            constellation,
            strategy="dfs",
            radius_policy=radius_policy or InfiniteRadius(),
            ordering="natural",
            pool_size=1,
            child_ordering="sorted",
            max_nodes=max_nodes,
            record_trace=record_trace,
        )
