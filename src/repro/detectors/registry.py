"""Declarative detector registry — the single construction path.

Every way the project builds a detector (CLI subcommands, the bench
harness, experiment scripts, process-sharded Monte Carlo) goes through
:class:`DetectorSpec`: a picklable value object naming a registered
*kind* plus keyword parameters. Calling the spec builds a fresh
detector, so a spec doubles as the detector factory the Monte Carlo
engine ships to pool workers — one spec, bit-identical detectors in
every process.

Registered kinds describe *configurations*, not just classes: ``sd`` is
the paper's canonical Algorithm-1 decoder (sorted-DFS + noise-scaled
radius + node cap), while ``sd-bestfs``/``sd-dfs`` are the Babai-seeded
exploration variants the CLI and the search ablation use. Each entry
also records capability flags (exact ML, fused batch decoding, FPGA
trace replay) and which paper figures use it, so ``repro-sd detectors``
can render an always-current capability table.

Adding a detector is a one-file change: implement the class, register a
kind here, and it automatically gets CLI access, batch decoding,
sharded Monte Carlo and — if it emits :class:`BatchEvent` traces —
FPGA pipeline replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.core.radius import BabaiRadius, NoiseScaledRadius
from repro.detectors.base import Detector
from repro.detectors.fsd import FixedComplexityDecoder
from repro.detectors.geosphere import GeosphereDecoder
from repro.detectors.kbest import KBestDecoder
from repro.detectors.linear import MMSEDetector, MRCDetector, ZeroForcingDetector
from repro.detectors.lr import LRZFDetector
from repro.detectors.ml import MLDetector
from repro.detectors.partitioned import PartitionedSphereDecoder
from repro.detectors.real_sd import RealSphereDecoder
from repro.detectors.sd_bfs import GemmBfsDecoder
from repro.detectors.sic import SICDetector
from repro.detectors.sphere import SphereDecoder
from repro.mimo.constellation import Constellation

#: Safety cap on expanded nodes per decode for the huge low-SNR points
#: (20x20 at 4 dB); truncations are counted and reported. This is the
#: ``max_nodes`` default of the canonical ``sd`` kind.
DEFAULT_MAX_NODES = 150_000


@dataclass(frozen=True)
class DetectorEntry:
    """One registered detector configuration.

    Attributes
    ----------
    kind:
        Registry key (``"sd"``, ``"bfs"``, ``"zf"``...).
    summary:
        One-line description for ``repro-sd detectors``.
    factory:
        ``factory(constellation, **params) -> Detector``.
    defaults:
        Full parameter set with default values; a spec may only
        override keys present here.
    exact:
        Returns the ML decision (brute-force-verified for the
        tree-search members in ``tests/test_ml_oracle.py``).
    batch:
        Supports the cross-frame fused ``decode_batch`` path.
    fpga_replayable:
        Emits a :class:`~repro.core.stats.BatchEvent` trace the FPGA
        pipeline simulator can replay.
    metric:
        Partial-distance metric of the node kernel (``"l2"`` exact ML
        reference, ``"linf"`` max/compare). Approximate metrics imply
        ``exact=False``.
    lattice:
        Lattice representation searched (``"complex"``, ``"real"``,
        ``"real-reordered"``); see :mod:`repro.core.lattice`.
    engines:
        Traversal engines this kind can run on. Every kind supports the
        ``"numpy"`` reference; kinds built on the shared
        :class:`~repro.detectors.engine.EngineDetector` shell also
        accept ``"compiled"`` (the fused-kernel
        :class:`~repro.core.compiled.CompiledTraversalEngine`, selected
        via the ``engine`` spec parameter / CLI ``--engine``).
    figures:
        Paper figures / experiments that use this configuration.
    """

    kind: str
    summary: str
    factory: Callable[..., Detector]
    defaults: Mapping[str, Any] = field(default_factory=dict)
    exact: bool = False
    batch: bool = False
    fpga_replayable: bool = False
    metric: str = "l2"
    lattice: str = "complex"
    engines: tuple[str, ...] = ("numpy",)
    figures: tuple[str, ...] = ()


@dataclass(frozen=True)
class DetectorSpec:
    """Picklable ``kind + params -> detector`` factory.

    Calling the spec builds a **fresh** detector instance. The factory
    itself is looked up in the registry at call time, so a pickled spec
    carries only the kind string, the constellation and plain-value
    parameters — safe to ship across a ``ProcessPoolExecutor``.
    """

    kind: str
    constellation: Constellation
    params: tuple[tuple[str, Any], ...] = ()

    def __call__(self) -> Detector:
        entry = detector_entry(self.kind)
        kwargs = dict(entry.defaults)
        kwargs.update(self.params)
        return entry.factory(self.constellation, **kwargs)

    def params_dict(self) -> dict[str, Any]:
        """The spec's parameter overrides as a plain dict."""
        return dict(self.params)


_REGISTRY: dict[str, DetectorEntry] = {}


def _register(entry: DetectorEntry) -> None:
    if entry.kind in _REGISTRY:
        raise ValueError(f"detector kind {entry.kind!r} already registered")
    _REGISTRY[entry.kind] = entry


def detector_entry(kind: str) -> DetectorEntry:
    """The registry entry for ``kind`` (KeyError-free lookup)."""
    try:
        return _REGISTRY[kind]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(
            f"unknown detector kind {kind!r}; registered kinds: {known}"
        ) from None


def detector_entries() -> tuple[DetectorEntry, ...]:
    """All registry entries, in registration (documentation) order."""
    return tuple(_REGISTRY.values())


def spec(kind: str, constellation: Constellation, **params: Any) -> DetectorSpec:
    """Build a validated :class:`DetectorSpec`.

    Parameter names are checked against the entry's declared defaults so
    a typo fails at spec-construction time, not inside a pool worker.
    """
    entry = detector_entry(kind)
    unknown = sorted(set(params) - set(entry.defaults))
    if unknown:
        raise ValueError(
            f"unknown parameter(s) {unknown} for detector kind {kind!r}; "
            f"accepted: {sorted(entry.defaults)}"
        )
    return DetectorSpec(kind, constellation, tuple(sorted(params.items())))


# ----------------------------------------------------------------------
# Factories (module-level so entries stay picklable-by-reference)
# ----------------------------------------------------------------------


def _make_sd(
    constellation, *, alpha, max_nodes, child_ordering, record_trace, engine
):
    return SphereDecoder(
        constellation,
        strategy="dfs",
        radius_policy=NoiseScaledRadius(alpha=alpha),
        child_ordering=child_ordering,
        max_nodes=max_nodes,
        record_trace=record_trace,
        engine=engine,
    )


def _make_sd_bestfs(constellation, *, pool_size, max_nodes, record_trace, engine):
    return SphereDecoder(
        constellation,
        strategy="best-first",
        pool_size=pool_size,
        max_nodes=max_nodes,
        record_trace=record_trace,
        engine=engine,
    )


def _make_sd_dfs(constellation, *, child_ordering, max_nodes, record_trace, engine):
    return SphereDecoder(
        constellation,
        strategy="dfs",
        child_ordering=child_ordering,
        max_nodes=max_nodes,
        record_trace=record_trace,
        engine=engine,
    )


def _make_bfs(constellation, *, alpha, max_frontier, record_trace, engine):
    return GemmBfsDecoder(
        constellation,
        radius_policy=NoiseScaledRadius(alpha=alpha),
        max_frontier=max_frontier,
        record_trace=record_trace,
        engine=engine,
    )


def _make_geosphere(constellation, *, max_nodes, record_trace, engine):
    return GeosphereDecoder(
        constellation, max_nodes=max_nodes, record_trace=record_trace,
        engine=engine,
    )


def _make_kbest(constellation, *, k, record_trace, engine):
    return KBestDecoder(
        constellation, k=k, record_trace=record_trace, engine=engine
    )


def _make_fsd(constellation, *, rho, record_trace, engine):
    return FixedComplexityDecoder(
        constellation, rho=rho, record_trace=record_trace, engine=engine
    )


def _make_real_sd(constellation, *, alpha, max_nodes, record_trace, engine):
    return RealSphereDecoder(
        constellation,
        strategy="dfs",
        radius_policy=NoiseScaledRadius(alpha=alpha),
        max_nodes=max_nodes,
        record_trace=record_trace,
        engine=engine,
    )


def _make_sd_linf(
    constellation, *, alpha, max_nodes, child_ordering, record_trace, engine
):
    # Same traversal shape as the canonical ``sd`` kind; only the
    # partial-distance metric differs (under linf the noise-scaled
    # radius degenerates to the metric-consistent Babai seed).
    return SphereDecoder(
        constellation,
        strategy="dfs",
        radius_policy=NoiseScaledRadius(alpha=alpha),
        child_ordering=child_ordering,
        max_nodes=max_nodes,
        metric="linf",
        record_trace=record_trace,
        engine=engine,
    )


def _make_kbest_linf(constellation, *, k, record_trace, engine):
    return KBestDecoder(
        constellation, k=k, metric="linf", record_trace=record_trace,
        engine=engine,
    )


def _make_real_sd_reordered(constellation, *, alpha, max_nodes, record_trace, engine):
    return RealSphereDecoder(
        constellation,
        strategy="dfs",
        radius_policy=NoiseScaledRadius(alpha=alpha),
        max_nodes=max_nodes,
        lattice="real-reordered",
        record_trace=record_trace,
        engine=engine,
    )


def _make_partitioned(constellation, *, n_pes, alpha, max_rounds, record_trace):
    radius_policy = BabaiRadius() if alpha is None else NoiseScaledRadius(alpha=alpha)
    return PartitionedSphereDecoder(
        constellation,
        n_pes=n_pes,
        radius_policy=radius_policy,
        max_rounds=max_rounds,
        record_trace=record_trace,
    )


def _make_zf(constellation):
    return ZeroForcingDetector(constellation)


def _make_mmse(constellation, *, es):
    return MMSEDetector(constellation, es=es)


def _make_mrc(constellation):
    return MRCDetector(constellation)


def _make_ml(constellation, *, max_candidates, chunk_size):
    if max_candidates is None:
        return MLDetector(constellation, chunk_size=chunk_size)
    return MLDetector(
        constellation, max_candidates=max_candidates, chunk_size=chunk_size
    )


def _make_sic(constellation, *, ordering):
    return SICDetector(constellation, ordering=ordering)


def _make_lr_zf(constellation, *, delta):
    return LRZFDetector(constellation, delta=delta)


# ----------------------------------------------------------------------
# The registry proper
# ----------------------------------------------------------------------

_register(DetectorEntry(
    kind="sd",
    summary="canonical Algorithm-1 SD: sorted-DFS, noise-scaled radius, node cap",
    factory=_make_sd,
    defaults={
        "alpha": 2.0,
        "max_nodes": DEFAULT_MAX_NODES,
        "child_ordering": "sorted",
        "record_trace": True,
        "engine": None,
    },
    exact=True,
    batch=True,
    fpga_replayable=True,
    engines=("numpy", "compiled"),
    figures=(
        "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
        "table2", "smoke", "ablation-search", "ablation-precision",
        "ablation-csi", "ablation-correlation", "ablation-domain",
    ),
))

_register(DetectorEntry(
    kind="sd-bestfs",
    summary="Best-FS SD: global PD priority queue, Babai seed, GEMM pooling",
    factory=_make_sd_bestfs,
    defaults={
        "pool_size": 8,
        "max_nodes": None,
        "record_trace": True,
        "engine": None,
    },
    exact=True,
    batch=True,
    fpga_replayable=True,
    engines=("numpy", "compiled"),
    figures=("ablation-search",),
))

_register(DetectorEntry(
    kind="sd-dfs",
    summary="sorted-DFS SD with Babai-seeded incumbent (no escalation)",
    factory=_make_sd_dfs,
    defaults={
        "child_ordering": "sorted",
        "max_nodes": None,
        "record_trace": True,
        "engine": None,
    },
    exact=True,
    batch=True,
    fpga_replayable=True,
    engines=("numpy", "compiled"),
    figures=("ablation-search",),
))

_register(DetectorEntry(
    kind="bfs",
    summary="level-synchronous GEMM-BFS (the GPU baseline of [1])",
    factory=_make_bfs,
    defaults={
        "alpha": 4.0,
        "max_frontier": 2**19,
        "record_trace": True,
        "engine": None,
    },
    exact=True,
    batch=True,
    fpga_replayable=True,
    engines=("numpy", "compiled"),
    figures=("fig11", "ablation-search"),
))

_register(DetectorEntry(
    kind="geosphere",
    summary="Geosphere-style scalar DFS (exact, non-batched WARP baseline)",
    factory=_make_geosphere,
    defaults={"max_nodes": None, "record_trace": True, "engine": None},
    exact=True,
    batch=True,
    fpga_replayable=True,
    engines=("numpy", "compiled"),
    figures=("fig12",),
))

_register(DetectorEntry(
    kind="kbest",
    summary="K-best: fixed-throughput breadth-first, K survivors per level",
    factory=_make_kbest,
    defaults={"k": 16, "record_trace": True, "engine": None},
    exact=False,
    batch=True,
    fpga_replayable=True,
    engines=("numpy", "compiled"),
))

_register(DetectorEntry(
    kind="fsd",
    summary="fixed-complexity SD: full enumeration on rho levels, SIC below",
    factory=_make_fsd,
    defaults={"rho": 1, "record_trace": True, "engine": None},
    exact=False,
    batch=True,
    fpga_replayable=True,
    engines=("numpy", "compiled"),
))

_register(DetectorEntry(
    kind="sphere-real",
    summary="exact SD over the 2M-level real-decomposition lattice",
    factory=_make_real_sd,
    defaults={
        "alpha": 2.0,
        "max_nodes": None,
        "record_trace": True,
        "engine": None,
    },
    exact=True,
    batch=False,
    fpga_replayable=True,
    lattice="real",
    engines=("numpy", "compiled"),
    figures=("ablation-domain",),
))

_register(DetectorEntry(
    kind="sd-linf",
    summary="linf-norm SD: max/compare NORM stage, bounded BER loss",
    factory=_make_sd_linf,
    defaults={
        "alpha": 2.0,
        "max_nodes": DEFAULT_MAX_NODES,
        "child_ordering": "sorted",
        "record_trace": True,
        "engine": None,
    },
    exact=False,
    batch=True,
    fpga_replayable=True,
    metric="linf",
    engines=("numpy", "compiled"),
    figures=("ablation-metric",),
))

_register(DetectorEntry(
    kind="kbest-linf",
    summary="K-best with linf partial distances (compare-tree NORM)",
    factory=_make_kbest_linf,
    defaults={"k": 16, "record_trace": True, "engine": None},
    exact=False,
    batch=True,
    fpga_replayable=True,
    metric="linf",
    engines=("numpy", "compiled"),
))

_register(DetectorEntry(
    kind="sd-real-reordered",
    summary="exact SD on the reordered (interleaved) real lattice",
    factory=_make_real_sd_reordered,
    defaults={
        "alpha": 2.0,
        "max_nodes": None,
        "record_trace": True,
        "engine": None,
    },
    exact=True,
    batch=True,
    fpga_replayable=True,
    lattice="real-reordered",
    engines=("numpy", "compiled"),
    figures=("ablation-metric",),
))

_register(DetectorEntry(
    kind="partitioned",
    summary="multi-PE cooperative tree search (section V future work)",
    factory=_make_partitioned,
    defaults={
        "n_pes": 4,
        "alpha": None,
        "max_rounds": None,
        "record_trace": True,
    },
    exact=True,
    batch=False,
    fpga_replayable=True,
    figures=("ablation-parallel",),
))

_register(DetectorEntry(
    kind="ml",
    summary="brute-force maximum likelihood (ground truth; no trace)",
    factory=_make_ml,
    defaults={"max_candidates": None, "chunk_size": 65536},
    exact=True,
))

_register(DetectorEntry(
    kind="zf",
    summary="zero-forcing linear detector",
    factory=_make_zf,
    figures=("fig7", "fig12"),
))

_register(DetectorEntry(
    kind="mmse",
    summary="MMSE linear detector",
    factory=_make_mmse,
    defaults={"es": 1.0},
    figures=("fig7", "fig12"),
))

_register(DetectorEntry(
    kind="mrc",
    summary="maximum-ratio combining (matched filter)",
    factory=_make_mrc,
))

_register(DetectorEntry(
    kind="sic",
    summary="successive interference cancellation (nulling + cancelling)",
    factory=_make_sic,
    defaults={"ordering": "sqrd"},
))

_register(DetectorEntry(
    kind="lr-zf",
    summary="lattice-reduction-aided ZF (LLL basis)",
    factory=_make_lr_zf,
    defaults={"delta": 0.75},
))
