"""Multi-PE partitioned tree search (paper section V, future work).

The paper's conclusion proposes "further parallelizing the execution of
the SD algorithm by partitioning the search tree over multiple
Processing Entities (PEs)", citing the massively-parallel design of
Nikitopoulos et al. [4] (29x latency reduction with 32 PEs) as related
work. This module implements that extension:

* the root's children are sorted by partial distance and dealt
  round-robin onto ``n_pes`` processing entities (so every PE starts
  with a promising branch — the "tree of promise" idea of [4]);
* each PE runs an independent sorted-DFS over its sub-trees;
* PEs share the incumbent radius: whenever any PE lands a better leaf
  the new bound is broadcast (a synchronisation event — cheap on the
  FPGA fabric, the costly part on GPUs);
* execution is simulated cooperatively, one expansion per live PE per
  round, which is exactly the lock-step schedule a replicated-pipeline
  FPGA implementation would follow.

The result remains **exact ML**: the PE partition covers the whole tree
and the shared bound only ever shrinks, so no PE can discard the
optimum. The interesting output is the *makespan*: the busiest PE's
expansion count, which bounds the parallel latency. Sub-linear scaling
(radius updates arrive later when the best branch is split away from
the others' work) is the effect [4] engineer around.

Unlike the other tree-search detectors this one is *not* a
:class:`~repro.core.traversal.TraversalEngine` configuration: its
cooperative round-robin schedule interleaves per-PE expansions with
shared-bound broadcasts, which does not fit the one-generator-per-frame
``ExpandRequest`` protocol. It stays a direct :class:`Detector` and
still emits the standard :class:`BatchEvent` trace.
"""

from __future__ import annotations

import numpy as np

from repro.core.gemm import GemmEvaluator
from repro.core.radius import BabaiRadius, RadiusPolicy, babai_point
from repro.core.tree import SearchNode, path_to_level_indices
from repro.detectors.base import BatchEvent, DecodeStats, DetectionResult, Detector
from repro.mimo.constellation import Constellation
from repro.mimo.preprocessing import QRResult, effective_receive, qr_decompose
from repro.util.timing import Timer
from repro.util.validation import check_matrix, check_positive_int, check_vector


class PartitionedSphereDecoder(Detector):
    """Exact sphere decoding over ``n_pes`` cooperating processing entities.

    Parameters
    ----------
    constellation:
        Symbol alphabet.
    n_pes:
        Processing entities (replicated pipelines). 1 reduces to the
        sequential sorted-DFS decoder.
    radius_policy:
        Initial-radius strategy shared by all PEs (default Babai seed:
        exact and never erases, so the cooperative loop needs no
        escalation logic).
    max_rounds:
        Optional cap on cooperative rounds (safety valve, mirrors
        ``max_nodes`` of the sequential decoder).
    """

    name = "sphere-partitioned"

    def __init__(
        self,
        constellation: Constellation,
        *,
        n_pes: int = 4,
        radius_policy: RadiusPolicy | None = None,
        max_rounds: int | None = None,
        record_trace: bool = True,
    ) -> None:
        self.constellation = constellation
        self.n_pes = check_positive_int(n_pes, "n_pes")
        self.radius_policy = radius_policy or BabaiRadius()
        self.max_rounds = (
            None if max_rounds is None else check_positive_int(max_rounds, "max_rounds")
        )
        self.record_trace = record_trace
        self._qr: QRResult | None = None
        self._channel: np.ndarray | None = None
        self._noise_var = 0.0
        self._prepared = False
        #: Per-PE expansion counts of the last decode (makespan analysis).
        self.last_pe_expansions: list[int] = []
        #: Radius-broadcast events of the last decode.
        self.last_sync_events: int = 0

    def prepare(self, channel: np.ndarray, noise_var: float = 0.0) -> None:
        channel = check_matrix(channel, "channel")
        if noise_var < 0:
            raise ValueError(f"noise_var must be non-negative, got {noise_var}")
        self._channel = channel
        self._qr = qr_decompose(channel)
        self._noise_var = float(noise_var)
        self._prepared = True

    # ------------------------------------------------------------------

    def _seed_stacks(
        self,
        evaluator: GemmEvaluator,
        bound: float,
        stats: DecodeStats,
    ) -> tuple[list[list[SearchNode]], np.ndarray | None, float]:
        """Grow enough sub-trees for every PE, then deal them round-robin.

        One root expansion yields only ``P`` sub-trees; with more PEs
        than that, the frontier is expanded level by level (the offline
        partitioning phase of [4], whose cost "scales only linearly")
        until at least ``n_pes`` sub-trees exist or the leaves are
        reached.
        """
        n_tx = evaluator.n_tx
        incumbent: np.ndarray | None = None
        frontier: list[SearchNode] = []
        seq = 1
        level = n_tx - 1
        # Expand the root first.
        pools: list[tuple[tuple[int, ...], float]] = [((), 0.0)]
        while True:
            paths = np.asarray([p for p, _ in pools], dtype=np.int64).reshape(
                len(pools), n_tx - 1 - level
            )
            pds = np.asarray([pd for _, pd in pools], dtype=float)
            child_pds = evaluator.expand(level, paths, pds)
            stats.nodes_expanded += len(pools)
            stats.nodes_generated += len(pools) * evaluator.order
            if self.record_trace:
                stats.batches.append(
                    BatchEvent(level=level, pool_size=len(pools))
                )
            frontier = []
            for i, (path, _pd) in enumerate(pools):
                for c in range(evaluator.order):
                    pd = float(child_pds[i, c])
                    if pd >= bound:
                        stats.nodes_pruned += 1
                        continue
                    if level == 0:
                        stats.leaves_reached += 1
                        if pd < bound:
                            bound = pd
                            incumbent = path_to_level_indices(
                                path + (c,), n_tx
                            )
                            stats.radius_updates += 1
                            stats.radius_trace.append(bound)
                        continue
                    frontier.append(
                        SearchNode(
                            pd=pd, seq=seq, level=level - 1, path=path + (c,)
                        )
                    )
                    seq += 1
            if level == 0 or len(frontier) >= self.n_pes or not frontier:
                break
            pools = [(node.path, node.pd) for node in frontier]
            level -= 1
        # Deal sub-trees best-first round-robin so every PE starts with a
        # promising branch ([4]'s tree-of-promise idea).
        frontier.sort(key=lambda node: (node.pd, node.seq))
        stacks: list[list[SearchNode]] = [[] for _ in range(self.n_pes)]
        for rank, node in enumerate(frontier):
            stacks[rank % self.n_pes].append(node)
        # Each PE explores best-candidate-first: put lowest PD on top.
        for stack in stacks:
            stack.reverse()
        return stacks, incumbent, bound

    def detect(self, received: np.ndarray) -> DetectionResult:
        self._require_prepared()
        received = check_vector(
            received, "received", length=self._channel.shape[0]
        )
        timer = Timer()
        stats = DecodeStats()
        with timer:
            ybar = effective_receive(self._qr, received)
            evaluator = GemmEvaluator(self._qr.r, ybar, self.constellation)
            init = self.radius_policy.initial(
                self._qr.r, ybar, self.constellation, self._noise_var
            )
            bound = float(init.radius_sq)
            incumbent = init.incumbent_indices
            stats.radius_trace.append(bound)
            stacks, root_incumbent, bound2 = self._seed_stacks(
                evaluator, bound, stats
            )
            if root_incumbent is not None:
                incumbent, bound = root_incumbent, bound2
            else:
                bound = bound2
            pe_expansions = [0] * self.n_pes
            sync_events = 0
            seq = evaluator.order + 1
            n_tx = evaluator.n_tx
            rounds = 0
            while any(stacks):
                rounds += 1
                if self.max_rounds is not None and rounds > self.max_rounds:
                    stats.truncated += 1
                    break
                for pe, stack in enumerate(stacks):
                    if not stack:
                        continue
                    node = stack.pop()
                    if node.pd >= bound:
                        stats.nodes_pruned += 1
                        continue
                    child_pds = evaluator.expand(
                        node.level,
                        np.asarray([node.path], dtype=np.int64),
                        np.asarray([node.pd]),
                    )[0]
                    pe_expansions[pe] += 1
                    stats.nodes_expanded += 1
                    stats.nodes_generated += evaluator.order
                    if self.record_trace:
                        stats.batches.append(
                            BatchEvent(level=node.level, pool_size=1)
                        )
                    if node.level == 0:
                        in_sphere = child_pds < bound
                        stats.leaves_reached += int(np.count_nonzero(in_sphere))
                        stats.nodes_pruned += int(
                            in_sphere.size - np.count_nonzero(in_sphere)
                        )
                        c = int(np.argmin(child_pds))
                        if child_pds[c] < bound:
                            bound = float(child_pds[c])
                            incumbent = path_to_level_indices(
                                node.path + (c,), n_tx
                            )
                            stats.radius_updates += 1
                            stats.radius_trace.append(bound)
                            sync_events += 1  # broadcast to all PEs
                    else:
                        order = np.argsort(child_pds, kind="stable")
                        for c in order[::-1]:
                            if child_pds[c] >= bound:
                                stats.nodes_pruned += 1
                                continue
                            stack.append(
                                SearchNode(
                                    pd=float(child_pds[c]),
                                    seq=seq,
                                    level=node.level - 1,
                                    path=node.path + (int(c),),
                                )
                            )
                            seq += 1
                    stats.max_list_size = max(
                        stats.max_list_size, sum(len(s) for s in stacks)
                    )
            if incumbent is None:
                incumbent, bound = babai_point(self._qr.r, ybar, self.constellation)
                stats.truncated = max(stats.truncated, 1)
            stats.gemm_calls = evaluator.gemm_calls
            stats.gemm_flops = evaluator.gemm_flops + evaluator.norm_flops
            self.last_pe_expansions = pe_expansions
            self.last_sync_events = sync_events
        stats.wall_time_s = timer.elapsed
        indices = self._qr.unpermute(incumbent)
        symbols = self.constellation.map_indices(indices)
        bits = self.constellation.indices_to_bits(indices)
        residual = received - self._channel @ symbols
        metric = float(np.real(np.vdot(residual, residual)))
        return DetectionResult(
            indices=indices,
            symbols=symbols,
            bits=bits,
            metric=metric,
            stats=stats,
        )

    # ------------------------------------------------------------------

    def makespan_expansions(self) -> int:
        """Busiest PE's expansion count of the last decode.

        Lock-step cooperative execution means the parallel latency is
        proportional to this (plus the shared root expansion), so
        ``sequential_total / makespan`` is the latency speedup a
        replicated-pipeline implementation would see.
        """
        if not self.last_pe_expansions:
            raise RuntimeError("no decode has run yet")
        return max(self.last_pe_expansions)
