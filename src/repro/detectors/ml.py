"""Brute-force Maximum Likelihood detector (paper eq. 2).

Enumerates all ``P^M`` candidate vectors and returns the one minimising
``||y - H s||^2``. Exponential — usable only for small systems — but it
is the *ground truth* the sphere decoders are property-tested against:
an exact SD must return exactly this answer.

Candidates are enumerated in chunks and evaluated with one GEMM per
chunk, so even the brute force follows the guides' BLAS-3 idiom.
"""

from __future__ import annotations

import numpy as np

from repro.detectors.base import DetectionResult, Detector
from repro.mimo.constellation import Constellation
from repro.util.validation import check_matrix, check_positive_int, check_vector

#: Refuse enumerations larger than this (prevents accidental 16-QAM 10x10).
DEFAULT_MAX_CANDIDATES = 4_194_304


class MLDetector(Detector):
    """Exhaustive ML search over the full candidate lattice."""

    name = "ml"

    def __init__(
        self,
        constellation: Constellation,
        *,
        max_candidates: int = DEFAULT_MAX_CANDIDATES,
        chunk_size: int = 65536,
    ) -> None:
        self.constellation = constellation
        self.max_candidates = check_positive_int(max_candidates, "max_candidates")
        self.chunk_size = check_positive_int(chunk_size, "chunk_size")
        self._channel: np.ndarray | None = None
        self._prepared = False

    def prepare(self, channel: np.ndarray, noise_var: float = 0.0) -> None:
        channel = check_matrix(channel, "channel")
        n_tx = channel.shape[1]
        total = self.constellation.order**n_tx
        if total > self.max_candidates:
            raise ValueError(
                f"brute-force ML would enumerate {total} candidates "
                f"(> max_candidates={self.max_candidates}); use a sphere decoder"
            )
        self._channel = channel
        self._prepared = True

    def _candidate_indices(self, n_tx: int, start: int, count: int) -> np.ndarray:
        """Rows ``start .. start+count`` of the mixed-radix enumeration.

        Candidate ``c`` maps to digits of ``c`` in base ``P``: stream ``j``
        gets digit ``(c // P^(M-1-j)) mod P``.
        """
        p = self.constellation.order
        ids = np.arange(start, start + count, dtype=np.int64)
        powers = p ** np.arange(n_tx - 1, -1, -1, dtype=np.int64)
        return (ids[:, None] // powers[None, :]) % p

    def detect(self, received: np.ndarray) -> DetectionResult:
        self._require_prepared()
        channel = self._channel
        received = check_vector(received, "received", length=channel.shape[0])
        n_tx = channel.shape[1]
        total = self.constellation.order**n_tx
        best_metric = np.inf
        best_indices: np.ndarray | None = None
        points = self.constellation.points
        for start in range(0, total, self.chunk_size):
            count = min(self.chunk_size, total - start)
            idx = self._candidate_indices(n_tx, start, count)
            candidates = points[idx]  # (count, n_tx)
            # One GEMM for the whole chunk: residuals (count, n_rx).
            residuals = candidates @ channel.T - received[None, :]
            metrics = np.sum(np.abs(residuals) ** 2, axis=1)
            k = int(np.argmin(metrics))
            if metrics[k] < best_metric:
                best_metric = float(metrics[k])
                best_indices = idx[k].copy()
        symbols = points[best_indices]
        bits = self.constellation.indices_to_bits(best_indices)
        return DetectionResult(
            indices=best_indices,
            symbols=symbols,
            bits=bits,
            metric=best_metric,
        )
