#!/usr/bin/env python
"""cProfile the smoke experiment and write the profile as a CI artifact.

Runs :func:`repro.bench.experiments.smoke_experiment` under
:mod:`cProfile`, prints the top functions by cumulative and internal
time, and writes two artifacts:

* ``<out>.pstats`` — the binary profile, loadable with ``pstats`` or
  ``snakeviz`` for interactive digging;
* ``<out>.txt`` — the printed tables, readable straight from the CI
  artifact listing.

CI uploads both from every smoke job, so a "why did host_ms move?"
investigation starts from a profile of the exact gated workload instead
of a local reproduction. Usage::

    PYTHONPATH=src python tools/profile_smoke.py [--out artifacts/smoke-profile]
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
from pathlib import Path


def profile_smoke(
    *,
    channels: int = 2,
    frames_per_channel: int = 3,
    seed: int = 2023,
    top: int = 30,
) -> tuple[cProfile.Profile, str]:
    """Profile one smoke run; returns the profile and the printed tables."""
    from repro.bench.experiments import smoke_experiment

    profile = cProfile.Profile()
    profile.enable()
    smoke_experiment(
        channels=channels, frames_per_channel=frames_per_channel, seed=seed
    )
    profile.disable()
    buf = io.StringIO()
    stats = pstats.Stats(profile, stream=buf)
    buf.write("== smoke experiment profile: top by cumulative time ==\n")
    stats.sort_stats("cumulative").print_stats(top)
    buf.write("\n== top by internal time ==\n")
    stats.sort_stats("tottime").print_stats(top)
    return profile, buf.getvalue()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="profile the smoke experiment; write .pstats + .txt artifacts"
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("artifacts/smoke-profile"),
        metavar="BASE",
        help="output base path (writes BASE.pstats and BASE.txt)",
    )
    parser.add_argument("--channels", type=int, default=2)
    parser.add_argument("--frames", type=int, default=3)
    parser.add_argument("--seed", type=int, default=2023)
    parser.add_argument(
        "--top", type=int, default=30, help="rows per printed table"
    )
    args = parser.parse_args(argv)

    profile, text = profile_smoke(
        channels=args.channels,
        frames_per_channel=args.frames,
        seed=args.seed,
        top=args.top,
    )
    args.out.parent.mkdir(parents=True, exist_ok=True)
    pstats_path = args.out.with_suffix(".pstats")
    txt_path = args.out.with_suffix(".txt")
    profile.dump_stats(pstats_path)
    txt_path.write_text(text)
    print(text)
    print(f"profile written to {pstats_path} (text report: {txt_path})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
