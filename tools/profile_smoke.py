#!/usr/bin/env python
"""cProfile the smoke experiment and write the profile as a CI artifact.

.. deprecated::
    This script is now a thin wrapper over :mod:`repro.obs.profile`
    (``repro-sd profile run smoke`` is the full-featured front end);
    it survives because CI and muscle memory know its artifact paths.

Runs :func:`repro.bench.experiments.smoke_experiment` under the tracer
with :class:`repro.obs.profile.SpanProfiler` scoping cProfile capture
to spans, prints the span self/total-time attribution plus the top
functions by internal and cumulative time, and writes four artifacts:

* ``<out>.pstats`` — the merged binary profile, loadable with
  ``pstats`` or ``snakeviz`` for interactive digging;
* ``<out>.txt`` — the printed tables, readable straight from the CI
  artifact listing;
* ``<out>.collapsed.txt`` — collapsed-stack flamegraph input
  (``flamegraph.pl`` / speedscope import);
* ``<out>.speedscope.json`` — a speedscope document, drag-and-drop
  into https://www.speedscope.app.

CI uploads all four from every smoke job, so a "why did host_ms move?"
investigation starts from a span-attributed profile of the exact gated
workload instead of a local reproduction. Usage::

    PYTHONPATH=src python tools/profile_smoke.py [--out artifacts/smoke-profile]
"""

from __future__ import annotations

import argparse
import io
from pathlib import Path


def profile_smoke(
    *,
    channels: int = 2,
    frames_per_channel: int = 3,
    seed: int = 2023,
    top: int = 30,
):
    """Profile one smoke run; returns (ProfileResult, printed tables)."""
    from repro.obs.profile import format_profile, profile_experiment

    result = profile_experiment(
        "smoke",
        channels=channels,
        frames_per_channel=frames_per_channel,
        seed=seed,
        functions_top=top,
    )
    buf = io.StringIO()
    buf.write(
        format_profile(
            result.tree, title="smoke span attribution", functions_top=0
        )
    )
    buf.write("\n\n")
    stats = result.profiler.combined_stats()
    stats.stream = buf
    buf.write("== smoke experiment profile: top by cumulative time ==\n")
    stats.sort_stats("cumulative").print_stats(top)
    buf.write("\n== top by internal time ==\n")
    stats.sort_stats("tottime").print_stats(top)
    return result, buf.getvalue()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="profile the smoke experiment; write .pstats/.txt/"
        ".collapsed.txt/.speedscope.json artifacts "
        "(thin wrapper over repro.obs.profile)"
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("artifacts/smoke-profile"),
        metavar="BASE",
        help="output base path (writes BASE.pstats, BASE.txt, "
        "BASE.collapsed.txt, BASE.speedscope.json)",
    )
    parser.add_argument("--channels", type=int, default=2)
    parser.add_argument("--frames", type=int, default=3)
    parser.add_argument("--seed", type=int, default=2023)
    parser.add_argument(
        "--top", type=int, default=30, help="rows per printed table"
    )
    args = parser.parse_args(argv)

    result, text = profile_smoke(
        channels=args.channels,
        frames_per_channel=args.frames,
        seed=args.seed,
        top=args.top,
    )
    from repro.obs.profile import write_collapsed, write_speedscope

    args.out.parent.mkdir(parents=True, exist_ok=True)
    pstats_path = args.out.with_suffix(".pstats")
    txt_path = args.out.with_suffix(".txt")
    result.profiler.combined_stats().dump_stats(pstats_path)
    txt_path.write_text(text)
    collapsed = write_collapsed(result.tree, args.out.with_suffix(".collapsed.txt"))
    speedscope = write_speedscope(
        result.tree, args.out.with_suffix(".speedscope.json"), name="smoke"
    )
    print(text)
    print(f"profile written to {pstats_path} (text report: {txt_path})")
    print(f"flamegraphs written to {collapsed} and {speedscope}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
