#!/usr/bin/env python
"""Import-direction lint for the package's layer contract.

The policy/backend split fixed the dependency direction between layers;
this lint keeps it fixed. Rules (module-level imports only — lazy
imports inside functions are the sanctioned escape hatch for the
deprecation shims and CLI subcommands):

- ``repro.core`` (search machinery) must not import ``repro.detectors``,
  ``repro.bench`` or ``repro.cli`` — policies and backends know nothing
  about the detector classes configured on top of them.
- ``repro.detectors`` must not import ``repro.bench`` or ``repro.cli``
  — detectors are library code; experiments drive them, never the
  reverse.
- ``repro.fpga`` consumes only the trace contract: from the detectors
  layer it may import ``repro.detectors.base`` alone (for the
  ``DecodeStats``/``BatchEvent`` types), and never ``repro.bench`` /
  ``repro.cli``.
- ``repro.serve`` sits above detectors/obs but below the experiment
  layer: it must not import ``repro.bench`` or ``repro.cli`` (the
  capacity experiments in ``repro.bench.serving`` import *it*, never
  the reverse), and the lower layers (core/detectors/fpga) must not
  import ``repro.serve``.

Exit status: 0 = clean, 1 = violations (each printed as
``path:line: message``), 2 = usage error.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
PACKAGE_ROOT = REPO_ROOT / "src" / "repro"

#: layer name -> repro submodule prefixes it must never import at
#: module level. ``repro.fpga`` additionally gets a detectors allowlist.
FORBIDDEN = {
    "core": ("repro.detectors", "repro.serve", "repro.bench", "repro.cli"),
    "detectors": ("repro.serve", "repro.bench", "repro.cli"),
    "fpga": ("repro.serve", "repro.bench", "repro.cli"),
    "serve": ("repro.bench", "repro.cli"),
}

#: The only detectors module the fpga layer may import.
FPGA_DETECTORS_ALLOWED = "repro.detectors.base"


def module_layer(path: Path) -> str | None:
    """The layer a source file belongs to (None = unconstrained)."""
    rel = path.relative_to(PACKAGE_ROOT)
    if rel.parts[0] == "cli.py":
        return "cli"
    if len(rel.parts) > 1:
        return rel.parts[0]
    return None


def module_level_imports(tree: ast.Module):
    """Yield ``(lineno, imported_module)`` for top-level imports only.

    Imports nested in functions/methods are deliberately ignored: the
    deprecation shims and the CLI resolve heavy modules lazily, and
    that laziness is exactly what keeps the import graph acyclic.
    """
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield node.lineno, alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative import; package is repro-internal
                continue
            if node.module:
                yield node.lineno, node.module


def top_level_nodes(tree: ast.Module):
    """The module-level statements (no recursion into function bodies)."""
    for node in tree.body:
        yield node
        # Class bodies execute at import time, so imports there are
        # module-level for layering purposes.
        if isinstance(node, ast.ClassDef):
            yield from node.body


def check_file(path: Path) -> list[str]:
    layer = module_layer(path)
    if layer not in FORBIDDEN:
        return []
    forbidden = FORBIDDEN[layer]
    tree = ast.parse(path.read_text(), filename=str(path))
    violations = []
    for node in top_level_nodes(tree):
        if isinstance(node, ast.Import):
            imports = [(node.lineno, a.name) for a in node.names]
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            imports = [(node.lineno, node.module)]
        else:
            continue
        for lineno, module in imports:
            rel = path.relative_to(REPO_ROOT)
            for banned in forbidden:
                if module == banned or module.startswith(banned + "."):
                    violations.append(
                        f"{rel}:{lineno}: {layer} layer must not import "
                        f"{module} (forbidden: {banned})"
                    )
            if layer == "fpga" and (
                module == "repro.detectors"
                or module.startswith("repro.detectors.")
            ):
                if module != FPGA_DETECTORS_ALLOWED:
                    violations.append(
                        f"{rel}:{lineno}: fpga layer may import only "
                        f"{FPGA_DETECTORS_ALLOWED} from the detectors "
                        f"layer, not {module}"
                    )
    return violations


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="lint the repro package's import-direction contract"
    )
    parser.parse_args(argv)
    if not PACKAGE_ROOT.is_dir():
        print(f"error: package root {PACKAGE_ROOT} not found", file=sys.stderr)
        return 2
    violations: list[str] = []
    for path in sorted(PACKAGE_ROOT.rglob("*.py")):
        violations.extend(check_file(path))
    if violations:
        print(f"LAYERING: {len(violations)} violation(s)")
        for line in violations:
            print(f"  {line}")
        return 1
    checked = sum(
        1 for p in PACKAGE_ROOT.rglob("*.py") if module_layer(p) in FORBIDDEN
    )
    print(f"layering OK: {checked} constrained module(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
