#!/usr/bin/env python
"""Benchmark-regression gate: fresh smoke run vs ``BENCH_baseline.json``.

Runs the ``smoke`` experiment (a tiny deterministic 6x6 sweep, seconds
of wall time — see ``repro.bench.experiments.smoke_experiment``),
flattens its series into named metrics, and compares each against the
committed baseline with a per-metric-class *relative* tolerance:

===========  ======================================  ================
class        metrics                                 default tolerance
===========  ======================================  ================
``time``     ``host_ms@*`` (measured wall time)      +60 %
``model``    ``cpu_model_ms@*``, ``fpga_opt_ms@*``   +2 %
``nodes``    ``mean_nodes[_linf|_rr]@*``             +2 %
``rate``     ``mean_nodes_per_sec[_linf|_rr]@*``     -60 %
``ber``      ``ber@*``                               +0 (abs 1e-9)
===========  ======================================  ================

``rate`` metrics are *higher-is-better*: they regress when the current
value falls **below** ``baseline * (1 - tol)`` (a throughput collapse),
the mirror image of every other class. Everything except ``host_ms``
and ``mean_nodes_per_sec`` is bit-deterministic for a fixed seed, so
those classes catch *algorithmic* regressions machine-independently;
the loose ``time``/``rate`` classes catch real slowdowns (an injected
2x is flagged) while absorbing run-to-run noise. Exit status: 0 = no
regression, 1 = regression(s), 2 = usage error.

Usage:
    python tools/check_regression.py                      # gate vs baseline
    python tools/check_regression.py --update             # refresh baseline
    python tools/check_regression.py --trajectory BENCH_trajectory.json
    python tools/check_regression.py --runs-dir runs      # also record a run
    python tools/check_regression.py --tol-time 5.0       # CI: noisy hosts

``tools/generate_report.py --baseline-out`` refreshes the same file as
part of a full report regeneration.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

#: Baseline/trajectory schema version.
SCHEMA = 1

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "BENCH_baseline.json"

#: Metric-class defaults: relative headroom before a higher-is-worse
#: metric counts as a regression (``ber`` also gets an absolute floor
#: so an exact-zero baseline stays comparable).
DEFAULT_TOLERANCES = {
    "time": 0.60,
    "model": 0.02,
    "nodes": 0.02,
    "rate": 0.60,
    "ber": 0.0,
}

#: Classes where *larger* is better — regression = falling below
#: ``baseline * (1 - tol)`` instead of exceeding ``baseline * (1 + tol)``.
HIGHER_IS_BETTER = frozenset({"rate"})

#: Absolute slack applied on top of the relative ``ber`` tolerance.
BER_ABS_SLACK = 1e-9

#: Metric-name prefix -> tolerance class. The ``_linf`` / ``_rr``
#: variants are the smoke sweep's per-metric/per-lattice series
#: (sd-linf and sd-real-reordered decoding their own deterministic
#: frame set) — same classes as the canonical decoder's columns. The
#: ``_compiled`` variants are the canonical decoder rerun on the fused
#: compiled traversal engine: node counts are bit-identical to numpy
#: (class ``nodes``) and the throughput is rate-gated like every other
#: nodes/s figure.
METRIC_CLASSES = {
    "host_ms": "time",
    "cpu_model_ms": "model",
    "fpga_opt_ms": "model",
    "mean_nodes": "nodes",
    "mean_nodes_per_sec": "rate",
    "mean_nodes_linf": "nodes",
    "mean_nodes_per_sec_linf": "rate",
    "mean_nodes_rr": "nodes",
    "mean_nodes_per_sec_rr": "rate",
    "mean_nodes_compiled": "nodes",
    "mean_nodes_per_sec_compiled": "rate",
    "ber": "ber",
}

#: Prefixes whose presence depends on the host (the ``_compiled``
#: columns exist only where Numba is importable). A metric with one of
#: these prefixes missing from *either* side of the comparison is
#: informational, never a violation — a numba-less dev box must still
#: pass the gate against a baseline recorded on the Numba CI leg, and
#: vice versa. When present on both sides it is compared normally.
OPTIONAL_METRIC_PREFIXES = frozenset(
    {"mean_nodes_compiled", "mean_nodes_per_sec_compiled"}
)


def _optional_metric(name: str) -> bool:
    return name.split("@", 1)[0] in OPTIONAL_METRIC_PREFIXES


def metric_class(name: str) -> str | None:
    """The tolerance class of one flattened metric (None = uncompared)."""
    prefix = name.split("@", 1)[0]
    return METRIC_CLASSES.get(prefix)


def collect_metrics(
    *,
    channels: int = 2,
    frames_per_channel: int = 3,
    seed: int = 2023,
    workers: int = 1,
    engine: str | None = None,
) -> tuple[dict[str, float], object]:
    """Run the smoke experiment; returns (flat metrics, SeriesResult).

    ``engine`` sets the ambient traversal engine for the whole sweep
    (``"compiled"`` on the Numba CI leg); deterministic metrics are
    bit-identical across engines, so the same baseline applies.
    """
    from contextlib import nullcontext

    from repro.bench.experiments import smoke_experiment
    from repro.core.compiled import use_engine

    scope = nullcontext() if engine is None else use_engine(engine)
    with scope:
        series = smoke_experiment(
            channels=channels,
            frames_per_channel=frames_per_channel,
            seed=seed,
            workers=workers,
        )
    metrics: dict[str, float] = {}
    for row in series.rows:
        snr = row["snr_db"]
        for column in (
            "host_ms",
            "cpu_model_ms",
            "fpga_opt_ms",
            "ber",
            "mean_nodes",
            "mean_nodes_per_sec",
            "mean_nodes_linf",
            "mean_nodes_per_sec_linf",
            "mean_nodes_rr",
            "mean_nodes_per_sec_rr",
            "mean_nodes_compiled",
            "mean_nodes_per_sec_compiled",
        ):
            value = row.get(column)
            if isinstance(value, (int, float)) and value == value:
                metrics[f"{column}@{snr:g}"] = float(value)
    return metrics, series


def compare(
    baseline: dict[str, float],
    current: dict[str, float],
    tolerances: dict[str, float] | None = None,
) -> list[dict]:
    """All regressions of ``current`` against ``baseline``.

    A metric regresses when ``current > baseline * (1 + tol)`` for its
    class (plus :data:`BER_ABS_SLACK` for BERs). Missing metrics on
    either side are reported as regressions too — a silently vanished
    metric must not pass the gate — except for the host-dependent
    :data:`OPTIONAL_METRIC_PREFIXES`, which only gate when both sides
    recorded them.
    """
    tols = dict(DEFAULT_TOLERANCES)
    tols.update(tolerances or {})
    violations: list[dict] = []
    for name, base in sorted(baseline.items()):
        cls = metric_class(name)
        if cls is None:
            continue
        if name not in current:
            if _optional_metric(name):
                continue
            violations.append(
                {"metric": name, "baseline": base, "current": None,
                 "tolerance": tols[cls], "reason": "metric missing from current run"}
            )
            continue
        cur = current[name]
        if cls in HIGHER_IS_BETTER:
            limit = base * (1.0 - tols[cls])
            if cur < limit:
                ratio = cur / base if base else float("inf")
                violations.append(
                    {"metric": name, "baseline": base, "current": cur,
                     "tolerance": tols[cls],
                     "reason": f"{ratio:.2f}x baseline "
                     f"(floor {1 - tols[cls]:.2f}x, higher is better)"}
                )
            continue
        limit = base * (1.0 + tols[cls])
        if cls == "ber":
            limit += BER_ABS_SLACK
        if cur > limit:
            ratio = cur / base if base else float("inf")
            violations.append(
                {"metric": name, "baseline": base, "current": cur,
                 "tolerance": tols[cls],
                 "reason": f"{ratio:.2f}x baseline (limit {1 + tols[cls]:.2f}x)"}
            )
    for name in sorted(set(current) - set(baseline)):
        if metric_class(name) is not None and not _optional_metric(name):
            violations.append(
                {"metric": name, "baseline": None, "current": current[name],
                 "tolerance": None, "reason": "metric missing from baseline"}
            )
    return violations


def _git_sha() -> str | None:
    from repro.obs.registry import _git_sha as sha

    return sha()


def print_attribution_hint(runs_dir, tracer, run_path) -> None:
    """Best-effort perf attribution printed under a failed gate.

    With ``--runs-dir`` the fresh smoke run recorded a trace, so a
    *regressed* gate can name the spans whose self-time grew the most
    against the previous recorded smoke run in the same registry (or,
    for a first recording, simply the biggest self-time spans). Purely
    advisory: any failure here is swallowed and the gate's exit code
    never changes.
    """
    try:
        from repro.obs.profile import (
            build_profile_tree,
            diff_profiles,
            load_profile,
        )
        from repro.obs.registry import MANIFEST_FILE, RunRegistry

        current = build_profile_tree(tracer.events)
        if not current.roots:
            return
        previous = None
        for run_dir in reversed(RunRegistry(runs_dir).run_dirs()):
            if run_path is not None and run_dir == Path(run_path):
                continue
            try:
                manifest = json.loads((run_dir / MANIFEST_FILE).read_text())
                if manifest.get("experiment") != "smoke":
                    continue
                previous = (run_dir.name, load_profile(run_dir))
                break
            except (OSError, ValueError, KeyError):
                continue
        if previous is not None:
            name, base_tree = previous
            rows = [
                r
                for r in diff_profiles(base_tree, current).rows
                if r.delta_s > 0
            ][:3]
            if not rows:
                return
            print(f"attribution hint (span self-time vs run {name}):")
            for r in rows:
                pct = (
                    f" ({100.0 * r.delta_s / base_tree.wall_s:+.1f}% of wall)"
                    if base_tree.wall_s
                    else ""
                )
                print(
                    f"  {r.span}: {r.self_a_s * 1e3:.3f} -> "
                    f"{r.self_b_s * 1e3:.3f} ms "
                    f"[{r.delta_s * 1e3:+.3f} ms]{pct}"
                )
        else:
            from repro.obs.profile import self_by_name

            flat = sorted(
                self_by_name(current).items(),
                key=lambda kv: kv[1]["self_s"],
                reverse=True,
            )[:3]
            print("attribution hint (top spans by self-time, no prior run):")
            for span, row in flat:
                print(f"  {span}: {row['self_s'] * 1e3:.3f} ms self")
    except Exception:  # noqa: BLE001 - advisory output must never gate
        pass


def write_baseline(
    path: Path, metrics: dict[str, float], config: dict
) -> None:
    payload = {
        "schema": SCHEMA,
        "experiment": "smoke",
        "generated_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "git_sha": _git_sha(),
        "config": config,
        "metrics": metrics,
    }
    path.write_text(json.dumps(payload, indent=1) + "\n")


def append_trajectory(path: Path, metrics: dict[str, float]) -> None:
    """Append one (timestamp, git SHA, metrics) point to the trajectory."""
    if path.is_file():
        doc = json.loads(path.read_text())
    else:
        doc = {"schema": SCHEMA, "experiment": "smoke", "points": []}
    doc["points"].append(
        {
            "recorded_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "git_sha": _git_sha(),
            "metrics": metrics,
        }
    )
    path.write_text(json.dumps(doc, indent=1) + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="compare a fresh smoke run against the committed benchmark baseline"
    )
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE,
        help=f"baseline file (default: {DEFAULT_BASELINE.name})",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="write the fresh metrics as the new baseline and exit 0",
    )
    parser.add_argument(
        "--trajectory", type=Path, default=None, metavar="PATH",
        help="append this run's metrics to a BENCH_trajectory.json",
    )
    parser.add_argument(
        "--runs-dir", default=None, metavar="DIR",
        help="also record the smoke run into this run registry",
    )
    parser.add_argument("--channels", type=int, default=2)
    parser.add_argument("--frames", type=int, default=3)
    parser.add_argument("--seed", type=int, default=2023)
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="run the smoke sweep sharded over N processes; deterministic "
        "metrics are bit-identical to serial, so the same baseline "
        "applies (CI uses this to gate the pool path)",
    )
    parser.add_argument(
        "--engine", choices=("numpy", "compiled"), default=None,
        help="ambient traversal engine for the sweep; deterministic "
        "metrics are bit-identical across engines, so the same "
        "baseline applies (the Numba CI leg gates --engine compiled)",
    )
    for cls, default in sorted(DEFAULT_TOLERANCES.items()):
        parser.add_argument(
            f"--tol-{cls}", type=float, default=None, metavar="REL",
            help=f"relative tolerance for the {cls} class (default {default})",
        )
    args = parser.parse_args(argv)

    if args.engine == "compiled":
        from repro.core.compiled import require_compiled

        try:
            require_compiled()
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    config = {
        "channels": args.channels,
        "frames_per_channel": args.frames,
        "seed": args.seed,
    }
    from repro.obs import (
        MetricsRegistry,
        RunRegistry,
        Tracer,
        use_metrics,
        use_tracer,
    )

    recorder = RunRegistry(args.runs_dir).new_run(
        "smoke", seed=args.seed, config=config
    )
    tracer = Tracer(enabled=recorder.enabled)
    metrics = MetricsRegistry(enabled=recorder.enabled)
    metrics.stream = recorder.stream_writer()
    with use_tracer(tracer), use_metrics(metrics):
        current, series = collect_metrics(
            channels=args.channels,
            frames_per_channel=args.frames,
            seed=args.seed,
            workers=args.workers,
            engine=args.engine,
        )
    metrics.tick(force=True)
    print(series.format())
    recorder.record_series(series)
    recorder.record_metrics(tracer, metrics)
    recorder.record_trace(tracer)
    recorder.record_profile(tracer)
    run_path = recorder.finalize()

    if args.trajectory is not None:
        append_trajectory(args.trajectory, current)
        print(f"trajectory point appended to {args.trajectory}")

    if args.update:
        write_baseline(args.baseline, current, config)
        print(f"baseline refreshed: {args.baseline}")
        return 0

    if not args.baseline.is_file():
        print(
            f"error: no baseline at {args.baseline}; run with --update first",
            file=sys.stderr,
        )
        return 2
    doc = json.loads(args.baseline.read_text())
    if doc.get("config") != config:
        print(
            f"error: baseline config {doc.get('config')} does not match "
            f"requested {config}; refresh with --update",
            file=sys.stderr,
        )
        return 2
    tolerances = {
        cls: value
        for cls in DEFAULT_TOLERANCES
        if (value := getattr(args, f"tol_{cls}")) is not None
    }
    violations = compare(doc["metrics"], current, tolerances)
    if violations:
        print(f"\nREGRESSION: {len(violations)} metric(s) beyond tolerance")
        for v in violations:
            print(
                f"  {v['metric']}: baseline={v['baseline']} "
                f"current={v['current']} ({v['reason']})"
            )
        if recorder.enabled:
            print_attribution_hint(args.runs_dir, tracer, run_path)
        return 1
    print(f"\nno regression: {len(current)} metric(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
