#!/usr/bin/env python
"""Regenerate the full experiment report (the EXPERIMENTS.md raw data).

Runs every registered experiment at a chosen scale and writes one
markdown/plain-text report with all tables (and optional ASCII charts).
This is how the measured numbers in EXPERIMENTS.md were produced.

Usage:
    python tools/generate_report.py                    # default scale
    python tools/generate_report.py --scale quick      # CI-sized
    python tools/generate_report.py --scale full       # deeper MC
    python tools/generate_report.py --only fig6 fig7   # subset
    python tools/generate_report.py --out report.md --plots
"""

from __future__ import annotations

import argparse
import sys
import time

#: Per-scale keyword overrides applied to every experiment that accepts
#: the Monte Carlo depth arguments.
SCALES = {
    "quick": {"channels": 2, "frames_per_channel": 2},
    "default": {},
    "full": {"channels": 6, "frames_per_channel": 8},
}


def main(argv=None) -> int:
    from repro.bench.experiments import EXPERIMENTS
    from repro.cli import _plot_experiment

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=sorted(SCALES), default="default")
    parser.add_argument("--only", nargs="*", default=None, help="experiment ids")
    parser.add_argument("--seed", type=int, default=2023)
    parser.add_argument("--out", default=None, help="write the report here")
    parser.add_argument("--plots", action="store_true", help="include ASCII charts")
    parser.add_argument(
        "--runs-dir",
        default=None,
        metavar="DIR",
        help="record each experiment's series into this run registry",
    )
    parser.add_argument(
        "--baseline-out",
        default=None,
        metavar="PATH",
        help="also refresh the benchmark-regression baseline "
        "(BENCH_baseline.json) from a fresh smoke run",
    )
    args = parser.parse_args(argv)

    names = args.only or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}", file=sys.stderr)
        return 2

    from repro.obs import RunRegistry

    registry = RunRegistry(args.runs_dir)
    sections: list[str] = [
        "# Experiment report",
        f"scale={args.scale} seed={args.seed}",
        "",
    ]
    for name in names:
        fn, description = EXPERIMENTS[name]
        kwargs = dict(SCALES[args.scale])
        if name == "table1":
            kwargs = {}
        else:
            kwargs["seed"] = args.seed
        started = time.perf_counter()
        print(f"[{name}] {description} ...", flush=True)
        recorder = registry.new_run(
            name, seed=kwargs.get("seed"), config=dict(kwargs)
        )
        try:
            result = fn(**kwargs)
        except TypeError:
            # Experiments without MC depth knobs (e.g. fixed sweeps).
            result = fn(seed=args.seed) if name != "table1" else fn()
        recorder.record_series(result)
        run_path = recorder.finalize()
        elapsed = time.perf_counter() - started
        print(f"[{name}] done in {elapsed:.1f}s")
        if run_path is not None:
            print(f"[{name}] run recorded: {run_path}")
        sections.append("```")
        sections.append(result.format())
        sections.append("```")
        if args.plots:
            chart = _plot_experiment(result)
            if chart:
                sections.append("```")
                sections.append(chart)
                sections.append("```")
        sections.append("")
    report = "\n".join(sections)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report)
        print(f"wrote {args.out}")
    else:
        print(report)
    if args.baseline_out:
        # tools/ is on sys.path when this file runs as a script.
        from pathlib import Path

        import check_regression

        metrics, _series = check_regression.collect_metrics(seed=args.seed)
        config = {"channels": 2, "frames_per_channel": 3, "seed": args.seed}
        check_regression.write_baseline(Path(args.baseline_out), metrics, config)
        print(f"baseline refreshed: {args.baseline_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
