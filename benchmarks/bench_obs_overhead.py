"""Observability overhead gate: decode cost with telemetry on vs off.

The contract (docs/observability.md): running the decoder under a fully
enabled telemetry stack — ambient :class:`~repro.obs.Tracer`, ambient
:class:`~repro.obs.MetricsRegistry` and a live
:class:`~repro.obs.MetricsStreamWriter` — must cost at most a few
percent over running with instrumentation off. CI enforces ``--check
--max-overhead 0.05`` (5%) on the regression-gate workload shape.

Methodology: the same frame set is decoded repeatedly. Each **cell**
(one channel prepare, or one frame decode — tens of ms) is timed for
both arms back-to-back, off and on adjacent in time, so sustained
drift on shared runners (frequency scaling, steal time) hits both arms
of a pair near-identically; pair order alternates per repeat so the
cache-warming advantage of running second cancels across repeats. Each
arm is then summarised as the sum of per-cell minima across repeats: a
scheduler spike pollutes one small cell of one repeat instead of a
whole arm, and the per-cell minimum is the estimate least polluted by
noise — the instrumentation cost is a strict add-on to it. Arm-level
interleaving (whole off pass, then whole on pass) is too coarse here:
drift phases longer than a pass flip the measured sign entirely.

Run directly (``python benchmarks/bench_obs_overhead.py``); this module
deliberately defines no ``bench_*`` functions, so ``pytest benchmarks/``
collects nothing from it.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
import tempfile
import time
from pathlib import Path

import numpy as np


def _build_frames(n_tx, n_rx, mod, snr_db, channels, frames, seed):
    from repro.mimo.system import MIMOSystem

    system = MIMOSystem(n_tx, n_rx, mod)
    rng = np.random.default_rng(seed)
    blocks = []
    for _ in range(channels):
        blocks.append(
            [system.random_frame(snr_db, rng) for _ in range(frames)]
        )
    return system, blocks


def measure_decode_seconds(decoder_factory, blocks) -> float:
    """Wall seconds to decode every frame of every block once."""
    return sum(measure_cell_seconds(decoder_factory, blocks))


def measure_cell_seconds(decoder_factory, blocks) -> list[float]:
    """Per-cell wall seconds: build+prepare per block, then per frame.

    Returns ``channels * (1 + frames)`` cells in a fixed order, so
    same-index cells across repeats time identical work and their
    minimum is meaningful.
    """
    perf = time.perf_counter
    cells = []
    for block in blocks:
        started = perf()
        decoder = decoder_factory()
        decoder.prepare(block[0].channel, noise_var=block[0].noise_var)
        cells.append(perf() - started)
        for frame in block:
            started = perf()
            decoder.detect(frame.received)
            cells.append(perf() - started)
    return cells


def measure_paired_cells(decoder_factory, blocks, telemetry_ctx, *, on_first):
    """Off/on cell times with the two arms adjacent in time per cell.

    Each cell's plain and instrumented runs (the latter inside
    ``telemetry_ctx()``) execute back-to-back, ``on_first`` choosing
    which goes first. Returns ``(off_cells, on_cells)``, same-index
    cells timing identical work.
    """
    perf = time.perf_counter
    off_cells, on_cells = [], []

    def prepare_cell():
        started = perf()
        decoder = decoder_factory()
        decoder.prepare(block[0].channel, noise_var=block[0].noise_var)
        return decoder, perf() - started

    for block in blocks:
        if on_first:
            with telemetry_ctx():
                on_dec, dt = prepare_cell()
            on_cells.append(dt)
            off_dec, dt = prepare_cell()
            off_cells.append(dt)
        else:
            off_dec, dt = prepare_cell()
            off_cells.append(dt)
            with telemetry_ctx():
                on_dec, dt = prepare_cell()
            on_cells.append(dt)
        for frame in block:
            received = frame.received
            if on_first:
                with telemetry_ctx():
                    started = perf()
                    on_dec.detect(received)
                    on_cells.append(perf() - started)
                started = perf()
                off_dec.detect(received)
                off_cells.append(perf() - started)
            else:
                started = perf()
                off_dec.detect(received)
                off_cells.append(perf() - started)
                with telemetry_ctx():
                    started = perf()
                    on_dec.detect(received)
                    on_cells.append(perf() - started)
    return off_cells, on_cells


def measure_overhead(
    *, channels=6, frames=10, n_tx=10, n_rx=10, mod="4qam",
    snr_db=8.0, seed=2023, repeats=9, stream_interval_s=0.05,
):
    """Interleaved off/on decode timings; returns a result dict."""
    from repro.bench.harness import canonical_decoder_factory
    from repro.obs import (
        MetricsRegistry,
        MetricsStreamWriter,
        Tracer,
        use_metrics,
        use_tracer,
    )

    system, blocks = _build_frames(
        n_tx, n_rx, mod, snr_db, channels, frames, seed
    )
    factory = canonical_decoder_factory(system.constellation)

    off_rows, on_rows = [], []
    with tempfile.TemporaryDirectory() as tmp:
        stream_path = Path(tmp) / "metrics.stream.jsonl"
        # Warm both arms (JIT-free but caches/allocators settle).
        measure_decode_seconds(factory, blocks)
        for rep in range(repeats):
            tracer = Tracer()
            metrics = MetricsRegistry()
            metrics.stream = MetricsStreamWriter(
                stream_path, interval_s=stream_interval_s
            )

            @contextlib.contextmanager
            def telemetry():
                with use_tracer(tracer), use_metrics(metrics):
                    yield

            off_cells, on_cells = measure_paired_cells(
                factory, blocks, telemetry, on_first=bool(rep % 2)
            )
            with telemetry():
                metrics.tick(force=True)
            off_rows.append(off_cells)
            on_rows.append(on_cells)
        lines_written = metrics.stream.lines_written
        n_events = len(tracer.events)
        n_series = len(metrics.snapshot().to_dict()["counters"])
    # Sum of per-cell minima: each cell's cost estimated from its
    # least-disturbed repeat, so one noise spike costs one cell.
    off_s = sum(min(col) for col in zip(*off_rows))
    on_s = sum(min(col) for col in zip(*on_rows))
    off_times = [sum(row) for row in off_rows]
    on_times = [sum(row) for row in on_rows]
    return {
        "off_s": off_s,
        "on_s": on_s,
        "overhead": (on_s - off_s) / off_s,
        "off_times": off_times,
        "on_times": on_times,
        "frames": channels * frames,
        "trace_events_per_rep": n_events,
        "counter_series": n_series,
        "stream_lines_last_rep": lines_written,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="measure decode overhead of full telemetry "
        "(tracer + metrics + live stream)"
    )
    parser.add_argument("--channels", type=int, default=6)
    parser.add_argument("--frames", type=int, default=10)
    parser.add_argument("--repeats", type=int, default=9)
    parser.add_argument("--seed", type=int, default=2023)
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 when overhead exceeds --max-overhead",
    )
    parser.add_argument(
        "--max-overhead", type=float, default=0.05, metavar="FRAC",
        help="maximum tolerated relative overhead with --check "
        "(default: 0.05)",
    )
    parser.add_argument(
        "--attempts", type=int, default=3, metavar="N",
        help="with --check, re-measure up to N times and pass if any "
        "attempt is within budget; the true overhead is stable, so only "
        "a measurement disturbed by external load needs a second look "
        "(default: 3)",
    )
    args = parser.parse_args(argv)

    attempts = max(1, args.attempts) if args.check else 1
    result = None
    for attempt in range(attempts):
        result = measure_overhead(
            channels=args.channels,
            frames=args.frames,
            repeats=args.repeats,
            seed=args.seed,
        )
        print(
            f"workload          : {result['frames']} frames, "
            f"10x10 4-QAM @ 8 dB "
            f"({args.repeats} interleaved repeats, per-cell minima)"
        )
        print(f"telemetry off     : {result['off_s'] * 1e3:8.1f} ms")
        print(
            f"telemetry on      : {result['on_s'] * 1e3:8.1f} ms  "
            f"({result['trace_events_per_rep']} trace events, "
            f"{result['counter_series']} counter series, "
            f"{result['stream_lines_last_rep']} stream lines)"
        )
        print(f"overhead          : {result['overhead']:+8.2%}")
        if not args.check or result["overhead"] <= args.max_overhead:
            break
        if attempt + 1 < attempts:
            print(
                f"attempt {attempt + 1}/{attempts} over budget; "
                "re-measuring"
            )
    if args.check:
        if result["overhead"] > args.max_overhead:
            print(
                f"FAIL: overhead {result['overhead']:.2%} exceeds the "
                f"{args.max_overhead:.0%} budget "
                f"({attempts} attempt(s))",
                file=sys.stderr,
            )
            return 1
        print(f"OK: within the {args.max_overhead:.0%} budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
