"""Micro-benchmarks of the hot kernels (repeated-measurement timings).

These are the classic pytest-benchmark entries: statistically meaningful
timings of the operations the decode loop lives in — useful when tuning
the NumPy implementation (the guides' "no optimisation without
measuring").
"""

import numpy as np

from repro.core.gemm import GemmEvaluator
from repro.core.radius import NoiseScaledRadius, babai_point
from repro.detectors.sphere import SphereDecoder
from repro.detectors.sd_bfs import GemmBfsDecoder
from repro.mimo.constellation import Constellation
from repro.mimo.preprocessing import effective_receive, qr_decompose, sorted_qr
from repro.mimo.system import MIMOSystem


def _fixture(n=10, modulation="4qam", snr_db=8.0, seed=0):
    system = MIMOSystem(n, n, modulation)
    frame = system.random_frame(snr_db, np.random.default_rng(seed))
    return system, frame


def bench_qr_decompose(benchmark):
    _, frame = _fixture(n=20)
    benchmark(qr_decompose, frame.channel)


def bench_sorted_qr(benchmark):
    _, frame = _fixture(n=20)
    benchmark(sorted_qr, frame.channel)


def bench_babai_point(benchmark):
    system, frame = _fixture(n=20)
    qr = qr_decompose(frame.channel)
    ybar = effective_receive(qr, frame.received)
    benchmark(babai_point, qr.r, ybar, system.constellation)


def bench_gemm_expand_pool64(benchmark):
    """One batched evaluation of 64 nodes x 16 children (the BLAS-3 core)."""
    system, frame = _fixture(n=10, modulation="16qam")
    qr = qr_decompose(frame.channel)
    ybar = effective_receive(qr, frame.received)
    ev = GemmEvaluator(qr.r, ybar, system.constellation)
    rng = np.random.default_rng(0)
    pool = rng.integers(0, 16, size=(64, 5)).astype(np.int64)
    pds = rng.uniform(0, 1, 64)
    benchmark(ev.expand, 4, pool, pds)


def bench_decode_10x10_4qam_8db(benchmark):
    """Full per-vector decode with the canonical configuration."""
    system, frame = _fixture(n=10, snr_db=8.0)
    decoder = SphereDecoder(
        system.constellation,
        strategy="dfs",
        radius_policy=NoiseScaledRadius(alpha=2.0),
        record_trace=False,
    )
    decoder.prepare(frame.channel, noise_var=frame.noise_var)
    benchmark(decoder.detect, frame.received)


def bench_decode_bestfirst_pooled(benchmark):
    """Best-FS with pool batching (the GEMM-friendly variant)."""
    system, frame = _fixture(n=10, snr_db=8.0)
    decoder = SphereDecoder(
        system.constellation, strategy="best-first", pool_size=16, record_trace=False
    )
    decoder.prepare(frame.channel, noise_var=frame.noise_var)
    benchmark(decoder.detect, frame.received)


def bench_bfs_sweep_12db(benchmark):
    """One level-synchronous BFS decode (the GPU baseline's workload)."""
    system, frame = _fixture(n=10, snr_db=12.0)
    decoder = GemmBfsDecoder(
        system.constellation,
        radius_policy=NoiseScaledRadius(alpha=4.0),
        max_frontier=2**17,
        record_trace=False,
    )
    decoder.prepare(frame.channel, noise_var=frame.noise_var)
    benchmark(decoder.detect, frame.received)


def bench_constellation_slicing(benchmark):
    const = Constellation.qam(16)
    rng = np.random.default_rng(0)
    values = rng.standard_normal(4096) + 1j * rng.standard_normal(4096)
    benchmark(const.nearest_indices, values)
