"""Micro-benchmarks of the hot kernels (repeated-measurement timings).

These are the classic pytest-benchmark entries: statistically meaningful
timings of the operations the decode loop lives in — useful when tuning
the NumPy implementation (the guides' "no optimisation without
measuring").

Besides the pytest-benchmark entries, this module doubles as a
standalone traversal-throughput reporter::

    PYTHONPATH=src python benchmarks/bench_kernels.py [--json OUT.json]

which times full decodes per strategy and pool size and emits
nodes-expanded-per-second figures — the numbers the SoA-frontier
refactor is judged by (see ``EXPERIMENTS.md``).
"""

import argparse
import json
import sys
import time

import numpy as np

from repro.core.gemm import GemmEvaluator
from repro.core.nodepool import NodePool, extend_paths
from repro.core.radius import NoiseScaledRadius, babai_point
from repro.detectors.sphere import SphereDecoder
from repro.detectors.sd_bfs import GemmBfsDecoder
from repro.mimo.constellation import Constellation
from repro.mimo.preprocessing import effective_receive, qr_decompose, sorted_qr
from repro.mimo.system import MIMOSystem


def _fixture(n=10, modulation="4qam", snr_db=8.0, seed=0):
    system = MIMOSystem(n, n, modulation)
    frame = system.random_frame(snr_db, np.random.default_rng(seed))
    return system, frame


def bench_qr_decompose(benchmark):
    _, frame = _fixture(n=20)
    benchmark(qr_decompose, frame.channel)


def bench_sorted_qr(benchmark):
    _, frame = _fixture(n=20)
    benchmark(sorted_qr, frame.channel)


def bench_babai_point(benchmark):
    system, frame = _fixture(n=20)
    qr = qr_decompose(frame.channel)
    ybar = effective_receive(qr, frame.received)
    benchmark(babai_point, qr.r, ybar, system.constellation)


def bench_gemm_expand_pool64(benchmark):
    """One batched evaluation of 64 nodes x 16 children (the BLAS-3 core)."""
    system, frame = _fixture(n=10, modulation="16qam")
    qr = qr_decompose(frame.channel)
    ybar = effective_receive(qr, frame.received)
    ev = GemmEvaluator(qr.r, ybar, system.constellation)
    rng = np.random.default_rng(0)
    pool = rng.integers(0, 16, size=(64, 5)).astype(np.int64)
    pds = rng.uniform(0, 1, 64)
    benchmark(ev.expand, 4, pool, pds)


def bench_decode_10x10_4qam_8db(benchmark):
    """Full per-vector decode with the canonical configuration."""
    system, frame = _fixture(n=10, snr_db=8.0)
    decoder = SphereDecoder(
        system.constellation,
        strategy="dfs",
        radius_policy=NoiseScaledRadius(alpha=2.0),
        record_trace=False,
    )
    decoder.prepare(frame.channel, noise_var=frame.noise_var)
    benchmark(decoder.detect, frame.received)


def bench_decode_bestfirst_pooled(benchmark):
    """Best-FS with pool batching (the GEMM-friendly variant)."""
    system, frame = _fixture(n=10, snr_db=8.0)
    decoder = SphereDecoder(
        system.constellation, strategy="best-first", pool_size=16, record_trace=False
    )
    decoder.prepare(frame.channel, noise_var=frame.noise_var)
    benchmark(decoder.detect, frame.received)


def bench_decode_linf_10x10_8db(benchmark):
    """Full decode under the ℓ∞ partial-distance metric (compare kernel)."""
    system, frame = _fixture(n=10, snr_db=8.0)
    decoder = SphereDecoder(
        system.constellation,
        strategy="dfs",
        radius_policy=NoiseScaledRadius(alpha=2.0),
        metric="linf",
        record_trace=False,
    )
    decoder.prepare(frame.channel, noise_var=frame.noise_var)
    benchmark(decoder.detect, frame.received)


def bench_decode_real_reordered_10x10_8db(benchmark):
    """Full decode on the interleaved (reordered) real lattice."""
    system, frame = _fixture(n=10, snr_db=8.0)
    decoder = SphereDecoder(
        system.constellation,
        strategy="dfs",
        radius_policy=NoiseScaledRadius(alpha=2.0),
        lattice="real-reordered",
        record_trace=False,
    )
    decoder.prepare(frame.channel, noise_var=frame.noise_var)
    benchmark(decoder.detect, frame.received)


def bench_bfs_sweep_12db(benchmark):
    """One level-synchronous BFS decode (the GPU baseline's workload)."""
    system, frame = _fixture(n=10, snr_db=12.0)
    decoder = GemmBfsDecoder(
        system.constellation,
        radius_policy=NoiseScaledRadius(alpha=4.0),
        max_frontier=2**17,
        record_trace=False,
    )
    decoder.prepare(frame.channel, noise_var=frame.noise_var)
    benchmark(decoder.detect, frame.received)


def bench_constellation_slicing(benchmark):
    const = Constellation.qam(16)
    rng = np.random.default_rng(0)
    values = rng.standard_normal(4096) + 1j * rng.standard_normal(4096)
    benchmark(const.nearest_indices, values)


# ----------------------------------------------------------------------
# Traversal microbenchmarks: the SoA-frontier hot paths in isolation
# ----------------------------------------------------------------------

#: Pool sizes the traversal benchmarks sweep (single-node DFS pops, the
#: default best-first pool, and a BFS-scale frontier).
TRAVERSAL_POOL_SIZES = (1, 8, 64)


def _admission_fixture(b, n_tx=10, order=16, seed=0):
    """Parent rows/PDs plus a survivor mask for one pool expansion."""
    rng = np.random.default_rng(seed)
    pool = NodePool(n_tx, capacity=4 * b + 1)
    root = pool.append_root()
    if n_tx > 1:
        rows = pool.append_children(
            np.full(b, root, dtype=np.int64),
            rng.integers(0, order, b),
            rng.uniform(0, 1, b),
            n_tx - 2,
        )
    else:
        rows = np.array([root], dtype=np.int64)
    child_pds = rng.uniform(0, 2, size=(b, order))
    bound = float(np.quantile(child_pds, 0.5))
    return pool, rows, child_pds, bound


def _admit_children(pool, rows, child_pds, bound, level):
    """One vectorised child-admission step (mask -> bulk append)."""
    mask = child_pds < bound
    ii, cc = np.nonzero(mask)
    return pool.append_children(rows[ii], cc, child_pds[ii, cc], level)


def _bench_pool_expand(benchmark, b):
    pool, rows, child_pds, bound = _admission_fixture(b)

    def step():
        # Fresh pool per round so capacity growth is part of the cost.
        p = NodePool(10, capacity=8)
        r = p.append_children(
            np.zeros(rows.shape[0], dtype=np.int64),
            np.zeros(rows.shape[0], dtype=np.int64),
            np.zeros(rows.shape[0]),
            8,
        )
        return _admit_children(p, r, child_pds, bound, 7)

    benchmark(step)


def bench_pool_expand_b1(benchmark):
    _bench_pool_expand(benchmark, 1)


def bench_pool_expand_b8(benchmark):
    _bench_pool_expand(benchmark, 8)


def bench_pool_expand_b64(benchmark):
    _bench_pool_expand(benchmark, 64)


def _bench_child_admission(benchmark, b):
    pool, rows, child_pds, bound = _admission_fixture(b)
    benchmark(_admit_children, pool, rows, child_pds, bound, 7)


def bench_child_admission_b1(benchmark):
    _bench_child_admission(benchmark, 1)


def bench_child_admission_b8(benchmark):
    _bench_child_admission(benchmark, 8)


def bench_child_admission_b64(benchmark):
    _bench_child_admission(benchmark, 64)


def _bench_heap_ops(benchmark, b):
    """Push-then-pop of one admitted sibling block through the frontier heap."""
    import heapq

    rng = np.random.default_rng(1)
    pds = rng.uniform(0, 1, b)
    rows = np.arange(b, dtype=np.int64)

    def step():
        heap = []
        seq = 0
        for pd, row in zip(pds.tolist(), rows.tolist()):
            heapq.heappush(heap, (pd, seq, row))
            seq += 1
        while heap:
            heapq.heappop(heap)

    benchmark(step)


def bench_heap_ops_b1(benchmark):
    _bench_heap_ops(benchmark, 1)


def bench_heap_ops_b8(benchmark):
    _bench_heap_ops(benchmark, 8)


def bench_heap_ops_b64(benchmark):
    _bench_heap_ops(benchmark, 64)


def bench_extend_paths_frontier(benchmark):
    """One BFS-level survivor-path extension at a 4096-node frontier."""
    rng = np.random.default_rng(2)
    paths = rng.integers(0, 16, size=(4096, 5)).astype(np.int64)
    keep_n = rng.integers(0, 4096, 8192)
    keep_c = rng.integers(0, 16, 8192)
    benchmark(extend_paths, paths, keep_n, keep_c)


# ----------------------------------------------------------------------
# Standalone traversal-throughput reporter (JSON for EXPERIMENTS.md)
# ----------------------------------------------------------------------


def _decode_throughput(
    strategy,
    pool_size,
    *,
    n=10,
    snr_db=8.0,
    repeats=5,
    metric="l2",
    lattice="complex",
    engine="numpy",
):
    """Best-of-``repeats`` nodes/s for one full-decode configuration."""
    system, frame = _fixture(n=n, snr_db=snr_db)
    kwargs = {
        "record_trace": False,
        "metric": metric,
        "lattice": lattice,
        "engine": engine,
    }
    if strategy == "best-first":
        kwargs["pool_size"] = pool_size
    else:
        kwargs["radius_policy"] = NoiseScaledRadius(alpha=2.0)
    decoder = SphereDecoder(system.constellation, strategy=strategy, **kwargs)
    decoder.prepare(frame.channel, noise_var=frame.noise_var)
    best = 0.0
    nodes = 0
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = decoder.detect(frame.received)
        dt = time.perf_counter() - t0
        nodes = result.stats.nodes_expanded
        best = max(best, nodes / dt if dt > 0 else 0.0)
    return {"nodes_expanded": int(nodes), "nodes_per_sec": best}


def _engine_entries(repeats, engine):
    """The per-policy throughput rows for one traversal engine."""
    entries = {}
    for b in TRAVERSAL_POOL_SIZES:
        entries[f"best-first/pool{b}"] = _decode_throughput(
            "best-first", b, repeats=repeats, engine=engine
        )
    entries["dfs"] = _decode_throughput("dfs", 1, repeats=repeats, engine=engine)
    # The evaluation-layer axes: ℓ∞ compare kernel and the interleaved
    # real lattice, both on the DFS reference configuration.
    entries["dfs/linf"] = _decode_throughput(
        "dfs", 1, repeats=repeats, metric="linf", engine=engine
    )
    entries["dfs/real-reordered"] = _decode_throughput(
        "dfs", 1, repeats=repeats, lattice="real-reordered", engine=engine
    )
    return entries


def traversal_report(repeats=5, engines=("numpy",)):
    """Nodes/s per (strategy, pool size) — the refactor's scoreboard.

    With ``engines=("numpy", "compiled")`` the compiled-engine rows are
    keyed ``compiled/<name>`` and the report gains
    ``mean_nodes_per_sec_compiled`` plus the compiled/numpy speedup.
    Node counts are bit-identical across engines by contract, so only
    the rates differ.
    """
    entries = dict(_engine_entries(repeats, "numpy"))
    rates = [e["nodes_per_sec"] for e in entries.values()]
    report = {
        "schema": 1,
        "workload": "10x10 4-QAM @ 8 dB, single frame, best of repeats",
        "repeats": repeats,
        "engines": list(engines),
        "entries": entries,
        "mean_nodes_per_sec": float(np.mean(rates)),
    }
    if "compiled" in engines:
        from repro.core.compiled import jit_active, warmup_kernels

        warmup_kernels()
        compiled = _engine_entries(repeats, "compiled")
        for name, entry in compiled.items():
            entries[f"compiled/{name}"] = entry
        crates = [e["nodes_per_sec"] for e in compiled.values()]
        report["mean_nodes_per_sec_compiled"] = float(np.mean(crates))
        report["compiled_speedup"] = (
            report["mean_nodes_per_sec_compiled"] / report["mean_nodes_per_sec"]
            if report["mean_nodes_per_sec"] > 0
            else 0.0
        )
        report["jit_active"] = jit_active()
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="traversal throughput microbenchmark (nodes/s per strategy)"
    )
    parser.add_argument(
        "--json", type=str, default=None, metavar="PATH",
        help="also write the report as JSON",
    )
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--engine",
        choices=("numpy", "compiled", "both", "auto"),
        default="auto",
        help="traversal engine(s) to time; 'auto' adds the compiled rows "
        "when the compiled engine is available on this host, 'compiled' "
        "and 'both' fail when it is not",
    )
    args = parser.parse_args(argv)
    from repro.core.compiled import compiled_available

    if args.engine == "auto":
        engines = ("numpy", "compiled") if compiled_available() else ("numpy",)
    elif args.engine == "numpy":
        engines = ("numpy",)
    else:
        if not compiled_available():
            print(
                "error: engine 'compiled' requires Numba, which is not "
                "installed (pip install '.[compiled]')",
                file=sys.stderr,
            )
            return 2
        engines = ("numpy", "compiled")
    report = traversal_report(repeats=args.repeats, engines=engines)
    width = max(len(k) for k in report["entries"])
    print(f"workload: {report['workload']}")
    for name, entry in report["entries"].items():
        print(
            f"  {name.ljust(width)}  {entry['nodes_per_sec']:12,.0f} nodes/s"
            f"  ({entry['nodes_expanded']} nodes)"
        )
    print(f"  {'mean'.ljust(width)}  {report['mean_nodes_per_sec']:12,.0f} nodes/s")
    if "mean_nodes_per_sec_compiled" in report:
        label = "mean (compiled)"
        print(
            f"  {label.ljust(width)}  "
            f"{report['mean_nodes_per_sec_compiled']:12,.0f} nodes/s"
            f"  ({report['compiled_speedup']:.2f}x numpy"
            f"{', jit' if report['jit_active'] else ', interpreted'})"
        )
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=1)
        print(f"report written to {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
