"""Ablation A1 — search strategies: nodes expanded per decode.

Backs the paper's section IV-F claim that the leaf-first (Best-FS /
sorted-DFS) exploration visits under 1% of the nodes a BFS sweep does at
low SNR, and quantifies our additional Babai seeding on top.
"""

from _helpers import run_and_report

from repro.bench.experiments import ablation_search_strategy


def bench_search_strategies(benchmark, capsys):
    result = run_and_report(
        benchmark,
        ablation_search_strategy,
        capsys,
        snrs=(4.0, 12.0, 20.0),
        channels=3,
        frames_per_channel=3,
        seed=2023,
    )
    rows = {row["snr_db"]: row for row in result.rows}
    # Low SNR: leaf-first under a few % of BFS (paper: <1%).
    assert rows[4.0]["bestfs_vs_bfs_pct"] < 3.0
    # Sorted insertion matters: natural-order DFS does more work.
    assert rows[4.0]["dfs_natural_nodes"] >= rows[4.0]["dfs_sorted_nodes"]
    # Best-first is the node-optimal exact strategy: never beaten by DFS.
    for row in result.rows:
        assert row["bestfs_nodes"] <= row["dfs_sorted_nodes"] * 1.25
    # The gap closes as SNR rises (everything gets easy).
    assert rows[20.0]["bestfs_vs_bfs_pct"] > rows[4.0]["bestfs_vs_bfs_pct"]
