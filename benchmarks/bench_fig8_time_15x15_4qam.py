"""Fig. 8 — execution time vs SNR, 15x15 MIMO, 4-QAM.

Paper: the CPU breaks the 10 ms real-time constraint at low SNR (>30 ms
at 4 dB) and only approaches real time around 8 dB; the optimised FPGA
decodes in real time from much lower SNR (6.1x speedup, ~5 ms).
"""

from _helpers import run_and_report

from repro.bench.experiments import fig8_time_15x15_4qam
from repro.bench.harness import REAL_TIME_MS


def bench_fig8_series(benchmark, capsys):
    result = run_and_report(
        benchmark,
        fig8_time_15x15_4qam,
        capsys,
        channels=3,
        frames_per_channel=3,
        seed=2023,
    )
    rows = {row["snr_db"]: row for row in result.rows}
    low, high = rows[4.0], rows[20.0]
    # CPU breaks real time at 4 dB; the paper reports >30 ms there.
    assert low["cpu_ms"] > REAL_TIME_MS
    # Speedup at least the 10x10 level and useful (paper: 6.1x).
    assert low["speedup_vs_cpu"] > 4.0
    # FPGA recovers real time within the sweep; CPU recovers by 20 dB.
    assert any(r["fpga_optimized_ms"] <= REAL_TIME_MS for r in result.rows)
    assert high["cpu_ms"] < low["cpu_ms"]
