"""Ablation A3 — reduced-precision decoding (paper section V future work).

The paper proposes exploring FP16/mixed precision as future work; this
ablation quantises the triangularised system before the search and
measures the BER cost of fp32 and fp16 relative to fp64.
"""

from _helpers import run_and_report

from repro.bench.experiments import ablation_precision


def bench_precision(benchmark, capsys):
    result = run_and_report(
        benchmark,
        ablation_precision,
        capsys,
        snrs=(4.0, 12.0, 20.0),
        channels=4,
        frames_per_channel=10,
        seed=2023,
    )
    for row in result.rows:
        # fp32 is BER-neutral for this dynamic range.
        assert row["fp32_ber"] <= row["fp64_ber"] + 0.02
        # fp16 stays a usable detector (not catastrophically broken).
        assert row["fp16_ber"] <= max(2.5 * row["fp64_ber"], 0.2)
