"""Ablation A2 — the FPGA optimisations of section III-C, toggled off
one at a time on the same decode trace."""

from _helpers import run_and_report

from repro.bench.experiments import ablation_fpga_optimizations


def bench_fpga_optimizations(benchmark, capsys):
    result = run_and_report(
        benchmark,
        ablation_fpga_optimizations,
        capsys,
        snr_db=8.0,
        channels=3,
        frames_per_channel=4,
        seed=2023,
    )
    by_name = {row["variant"]: row for row in result.rows}
    opt_ms = by_name["optimized (all on)"]["decode_ms"]
    base_ms = by_name["baseline (all off)"]["decode_ms"]
    # The full optimisation stack is what produces the paper's ~3.5x gap
    # between the baseline port and the optimised design (Fig. 6).
    assert base_ms / opt_ms > 2.0
    # No single toggle may ever *improve* on the optimised design.
    for name, row in by_name.items():
        assert row["decode_ms"] >= opt_ms * 0.999, name
    # Each listed optimisation individually costs something when removed.
    for name in ("no double buffering", "gemm II=4", "no dataflow overlap",
                 "generic control"):
        assert by_name[name]["decode_ms"] > opt_ms
