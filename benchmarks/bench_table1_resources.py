"""Table I — FPGA resource utilisation, baseline vs optimised designs."""

from _helpers import run_and_report

from repro.bench.experiments import table1_resources


def bench_table1_resources(benchmark, capsys):
    result = run_and_report(benchmark, table1_resources, capsys)
    assert len(result.rows) == 4
    # Every cell within 3 percentage points of the paper.
    for row in result.rows:
        for resource in ("luts", "ffs", "dsps", "brams", "urams"):
            assert abs(row[f"{resource}_pct"] - row[f"{resource}_paper"]) < 3.0
