"""Ablation A7 — complex-domain vs real-decomposition search trees."""

from _helpers import run_and_report

from repro.bench.experiments import ablation_domain


def bench_domain(benchmark, capsys):
    result = run_and_report(
        benchmark,
        ablation_domain,
        capsys,
        snr_db=10.0,
        modulations=("4qam", "16qam"),
        channels=2,
        frames_per_channel=2,
        seed=2023,
    )
    rows = {row["modulation"]: row for row in result.rows}
    for row in result.rows:
        # Real-domain children per expansion = sqrt(P); complex = P —
        # expansions compensate, so the children ratio stays bounded.
        assert 0.05 < row["children_ratio"] < 20.0
    # Deeper trees mean the real domain always expands more nodes.
    assert rows["4qam"]["real_expansions"] > rows["4qam"]["complex_expansions"]
