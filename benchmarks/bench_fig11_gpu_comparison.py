"""Fig. 11 — FPGA (Best-FS) vs the GPU GEMM-BFS implementation of [1].

Paper: the GPU decodes 10x10 4-QAM in 6 ms at 12 dB; the FPGA design is
57x faster on average across the sweep because the leaf-first search
prunes the space to under 1% of the BFS node count (section IV-F).
"""

from _helpers import run_and_report

from repro.bench.experiments import fig11_gpu_comparison


def bench_fig11_series(benchmark, capsys):
    result = run_and_report(
        benchmark,
        fig11_gpu_comparison,
        capsys,
        channels=2,
        frames_per_channel=3,
        seed=2023,
    )
    rows = {row["snr_db"]: row for row in result.rows}
    # FPGA wins at every SNR, and by a wide margin on average.
    speedups = [row["speedup"] for row in result.rows]
    assert all(s > 4.0 for s in speedups)
    assert sum(speedups) / len(speedups) > 15.0  # paper: 57x average
    # GPU anchor ballpark: ~6 ms at 12 dB (within ~3x here).
    assert 2.0 < rows[12.0]["gpu_bfs_ms"] < 20.0
    # The node-count argument: <=1-2% of BFS at the low-SNR end.
    assert rows[4.0]["node_fraction"] < 0.02
