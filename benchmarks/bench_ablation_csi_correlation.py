"""Ablations A5/A6 — imperfect CSI and spatial correlation.

Both extend the paper's idealised evaluation (perfect CSI, i.i.d.
Rayleigh) toward deployment conditions and quantify the impact on BER
*and* on the sphere decoder's workload (hence decode time on every
platform)."""

from _helpers import run_and_report

from repro.bench.experiments import ablation_correlation, ablation_imperfect_csi


def bench_imperfect_csi(benchmark, capsys):
    result = run_and_report(
        benchmark,
        ablation_imperfect_csi,
        capsys,
        snr_db=12.0,
        pilot_snrs_db=(0.0, 10.0, 20.0, 40.0),
        channels=5,
        frames_per_channel=6,
        seed=2023,
    )
    rows = {row["pilot_snr_db"]: row for row in result.rows}
    # Estimation MSE falls monotonically with pilot SNR.
    mses = [rows[s]["channel_mse"] for s in sorted(rows)]
    assert all(a > b for a, b in zip(mses, mses[1:]))
    # Bad pilots cost BER and workload.
    assert rows[0.0]["ber"] >= rows[40.0]["ber"]
    assert rows[0.0]["mean_nodes"] > rows[40.0]["mean_nodes"]
    # Good pilots approach perfect-CSI behaviour (clean at 12 dB).
    assert rows[40.0]["ber"] < 0.02


def bench_correlation(benchmark, capsys):
    result = run_and_report(
        benchmark,
        ablation_correlation,
        capsys,
        snr_db=8.0,
        rhos=(0.0, 0.5, 0.9),
        channels=5,
        frames_per_channel=5,
        seed=2023,
    )
    rows = {row["rho"]: row for row in result.rows}
    # Correlation degrades BER and inflates the search.
    assert rows[0.9]["ber"] > rows[0.0]["ber"]
    assert rows[0.9]["mean_nodes"] > 2 * rows[0.0]["mean_nodes"]
