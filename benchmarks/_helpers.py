"""Shared benchmark helpers.

Each ``bench_*.py`` file regenerates one paper artifact (table / figure /
ablation). The experiment itself runs once per module (kept light via
reduced Monte Carlo scale — see EXPERIMENTS.md for full-scale outputs);
the ``benchmark`` fixture times it, and the resulting series is printed
so ``pytest benchmarks/ --benchmark-only -s`` reproduces the paper's
rows alongside the timing statistics.
"""

from __future__ import annotations


def run_and_report(benchmark, experiment_fn, capsys, **kwargs):
    """Benchmark one experiment (single round) and print its table."""
    result = benchmark.pedantic(
        lambda: experiment_fn(**kwargs), rounds=1, iterations=1
    )
    with capsys.disabled():
        print("\n" + result.format() + "\n")
    return result
