"""Serving capacity benchmark — streams vs latency under an SLO.

The deployment-side complement to the per-vector figure benchmarks:
instead of timing one decode, it serves seeded multi-stream load traces
through the :mod:`repro.serve` coalescing scheduler and reports the
p50/p95/p99 sojourn, throughput and batch fill per stream count.

As a pytest-benchmark entry it runs a reduced sweep with the
deterministic FPGA service model and asserts the shape invariants
(conservation, monotone batch fill, SLO attainment at light load, and
served-vs-direct bit identity). As a standalone reporter::

    PYTHONPATH=src python benchmarks/bench_serve_capacity.py [--json OUT]

it emits the capacity table plus a machine-readable JSON document in
the same spirit as ``bench_kernels.py --json``.
"""

import argparse
import json

from _helpers import run_and_report

from repro.bench.serving import capacity_sweep, check_conformance

#: Reduced-scale sweep shared by the pytest entry and the CLI reporter.
BENCH_KWARGS = dict(
    n_antennas=4,
    modulation="4qam",
    snr_db=8.0,
    stream_counts=(2, 8, 24),
    rate_hz=400.0,
    duration_s=0.05,
    slo_ms=10.0,
    kind="sd",
    seed=2023,
    streams_per_block=4,
    max_batch=16,
    max_delay_ms=1.0,
    service="fpga",
)


def bench_serve_capacity(benchmark, capsys):
    result = run_and_report(
        benchmark,
        lambda **kw: capacity_sweep(**kw).series,
        capsys,
        **BENCH_KWARGS,
    )
    rows = result.rows
    assert [r["streams"] for r in rows] == [2, 8, 24]
    for row in rows:
        # Nothing rejected at these loads: accepted == offered.
        assert row["accepted"] == row["offered"]
        assert row["rejected"] == 0
        # Batch fill is bounded by the scheduler cap.
        assert 1.0 <= row["mean_fill"] <= BENCH_KWARGS["max_batch"]
    # Coalescing: more streams per block means fuller batches.
    assert rows[-1]["mean_fill"] > rows[0]["mean_fill"]
    # The lightest point comfortably meets the SLO.
    assert rows[0]["slo_attained"] == 1.0
    assert rows[0]["p95_ms"] <= BENCH_KWARGS["slo_ms"]


def bench_serve_conformance(benchmark, capsys):
    """Served results stay bit-identical to direct per-frame decoding."""

    def run():
        res = capacity_sweep(**{**BENCH_KWARGS, "stream_counts": (6,)})
        mismatches = check_conformance(res.points[0], res.kind, res.system)
        assert mismatches == [], mismatches[:5]
        return res.series

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n" + result.format() + "\n")


def capacity_report(**overrides):
    """Run the sweep and fold it into a JSON-friendly document."""
    kwargs = {**BENCH_KWARGS, **overrides}
    result = capacity_sweep(**kwargs)
    return result, {
        "schema": 1,
        "workload": result.series.title,
        "config": {
            k: (list(v) if isinstance(v, tuple) else v)
            for k, v in kwargs.items()
        },
        "rows": result.series.rows,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="serving capacity benchmark (streams vs p50/p95/p99)"
    )
    parser.add_argument(
        "--json", type=str, default=None, metavar="PATH",
        help="also write the capacity table as JSON",
    )
    parser.add_argument(
        "--streams", type=str, default=None, metavar="N,N,...",
        help="override the stream counts (default: 2,8,24)",
    )
    parser.add_argument(
        "--service", type=str, default=BENCH_KWARGS["service"],
        help="service model: measured | fpga | fixed:<us>",
    )
    args = parser.parse_args(argv)
    overrides = {"service": args.service}
    if args.streams:
        overrides["stream_counts"] = tuple(
            int(p) for p in args.streams.split(",") if p.strip()
        )
    result, report = capacity_report(**overrides)
    print(result.format())
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=1)
        print(f"report written to {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
