"""Bench-suite observability wiring.

Every ``bench_*.py`` gains three pytest options without touching the
individual bench modules:

``--obs-trace PATH``
    Run each bench under an enabled tracer and write one Chrome
    ``trace_event`` JSON per bench (``PATH/<bench>.trace.json``, or
    ``PATH`` itself when it ends in ``.json``). Load the files in
    ``chrome://tracing`` or https://ui.perfetto.dev. (Named
    ``--obs-trace`` because pytest reserves ``--trace`` for pdb.)
``--metrics``
    Print the aligned-text span/counter summary (p50/p95/p99) after
    each bench's table.
``--obs-runs DIR``
    Record each bench into the persistent run registry under ``DIR``:
    one ``runs``-style directory per bench with manifest, span/counter
    metrics, the full Chrome trace and the span profile
    (``profile.json``). Compare recordings later with
    ``repro-sd runs diff`` / ``repro-sd profile diff`` (see
    ``docs/observability.md``).
``--obs-flame DIR``
    Export per-bench flamegraphs: ``DIR/<bench>.collapsed.txt``
    (collapsed-stack, ``flamegraph.pl`` input) and
    ``DIR/<bench>.speedscope.json`` (drag onto
    https://www.speedscope.app) built from the span call-tree's
    self-times.

All four are implemented by :func:`repro.bench.harness.observe_bench`.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    group = parser.getgroup("observability")
    group.addoption(
        "--obs-trace",
        action="store",
        default=None,
        metavar="PATH",
        help="write a Chrome trace per bench under PATH "
        "(a directory, or a single .json file)",
    )
    group.addoption(
        "--metrics",
        action="store_true",
        default=False,
        help="print the span/counter percentile summary after each bench",
    )
    group.addoption(
        "--obs-runs",
        action="store",
        default=None,
        metavar="DIR",
        help="record each bench (manifest + metrics + trace + span "
        "profile) into the run registry under DIR",
    )
    group.addoption(
        "--obs-flame",
        action="store",
        default=None,
        metavar="DIR",
        help="write per-bench flamegraphs (collapsed-stack + speedscope "
        "JSON) under DIR",
    )


@pytest.fixture(autouse=True)
def _bench_observability(request, capsys):
    """Scope every bench under the ambient tracer when requested."""
    from repro.bench.harness import observe_bench

    trace = request.config.getoption("--obs-trace")
    metrics = request.config.getoption("--metrics")
    runs_dir = request.config.getoption("--obs-runs")
    flame = request.config.getoption("--obs-flame")
    if trace is None and not metrics and runs_dir is None and flame is None:
        yield
        return
    # Print even without `-s`, matching the bench tables themselves.
    with capsys.disabled():
        with observe_bench(
            request.node.name,
            trace=trace,
            metrics=metrics,
            runs_dir=runs_dir,
            flame=flame,
        ):
            yield
