"""Bench-suite observability wiring.

Every ``bench_*.py`` gains two pytest options without touching the
individual bench modules:

``--obs-trace PATH``
    Run each bench under an enabled tracer and write one Chrome
    ``trace_event`` JSON per bench (``PATH/<bench>.trace.json``, or
    ``PATH`` itself when it ends in ``.json``). Load the files in
    ``chrome://tracing`` or https://ui.perfetto.dev. (Named
    ``--obs-trace`` because pytest reserves ``--trace`` for pdb.)
``--metrics``
    Print the aligned-text span/counter summary (p50/p95/p99) after
    each bench's table.

Both are implemented by :func:`repro.bench.harness.observe_bench`.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    group = parser.getgroup("observability")
    group.addoption(
        "--obs-trace",
        action="store",
        default=None,
        metavar="PATH",
        help="write a Chrome trace per bench under PATH "
        "(a directory, or a single .json file)",
    )
    group.addoption(
        "--metrics",
        action="store_true",
        default=False,
        help="print the span/counter percentile summary after each bench",
    )


@pytest.fixture(autouse=True)
def _bench_observability(request, capsys):
    """Scope every bench under the ambient tracer when requested."""
    from repro.bench.harness import export_observations
    from repro.obs import Tracer, use_tracer

    trace = request.config.getoption("--obs-trace")
    metrics = request.config.getoption("--metrics")
    if trace is None and not metrics:
        yield
        return
    tracer = Tracer()
    with use_tracer(tracer):
        yield
    # Print even without `-s`, matching the bench tables themselves.
    with capsys.disabled():
        export_observations(
            tracer, request.node.name, trace=trace, metrics=metrics
        )
