"""Execution-profile and modulation-scaling benches (section III-A / IV-E)."""

from _helpers import run_and_report

from repro.bench.experiments import profile_execution, scaling_modulation


def bench_execution_profile(benchmark, capsys):
    result = run_and_report(
        benchmark,
        profile_execution,
        capsys,
        snr_db=8.0,
        channels=3,
        frames_per_channel=4,
        seed=2023,
    )
    by_design = {row["design"]: row for row in result.rows}
    base = by_design["baseline"]
    opt = by_design["optimized"]
    # Optimisation shrinks total cycles substantially on the same trace.
    assert opt["total_mcycles"] < 0.5 * base["total_mcycles"]
    # Shares sum to ~100% for each design.
    for row in result.rows:
        total_pct = sum(
            row[k] for k in row if k.endswith("_pct")
        )
        assert 95.0 < total_pct <= 100.5


def bench_modulation_scaling(benchmark, capsys):
    result = run_and_report(
        benchmark,
        scaling_modulation,
        capsys,
        snr_db=12.0,
        modulations=("4qam", "16qam", "64qam"),
        channels=1,
        frames_per_channel=2,
        seed=2023,
    )
    rows = {row["modulation"]: row for row in result.rows}
    # Strict cost ordering with the modulation factor (section IV-E).
    assert rows["4qam"]["cpu_ms"] < rows["16qam"]["cpu_ms"] < rows["64qam"]["cpu_ms"]
    assert rows["16qam"]["cpu_ms"] > 10 * rows["4qam"]["cpu_ms"]
