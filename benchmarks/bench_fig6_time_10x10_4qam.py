"""Fig. 6 — execution time vs SNR, 10x10 MIMO, 4-QAM.

Paper anchors: CPU 7 ms at 4 dB; FPGA-optimized ~5x faster; the
FPGA-baseline (direct HLS port) only ~1.4x faster than the CPU. All
three meet the 10 ms real-time budget for this configuration.
"""

from _helpers import run_and_report

from repro.bench.experiments import fig6_time_10x10_4qam
from repro.bench.harness import REAL_TIME_MS


def bench_fig6_series(benchmark, capsys):
    result = run_and_report(
        benchmark,
        fig6_time_10x10_4qam,
        capsys,
        channels=3,
        frames_per_channel=4,
        seed=2023,
    )
    rows = {row["snr_db"]: row for row in result.rows}
    # Shape: decode time monotone non-increasing with SNR on every platform.
    snrs = sorted(rows)
    for key in ("cpu_ms", "fpga_baseline_ms", "fpga_optimized_ms"):
        series = [rows[s][key] for s in snrs]
        assert all(a >= b * 0.8 for a, b in zip(series, series[1:])), (key, series)
    low = rows[4.0]
    # Paper: CPU ~7 ms at 4 dB (ours within ~2x of the anchor).
    assert 3.0 < low["cpu_ms"] < 16.0
    # Paper: ~5x FPGA speedup; baseline ~1.4x.
    assert 3.0 < low["speedup_vs_cpu"] < 8.0
    assert 1.1 < low["cpu_ms"] / low["fpga_baseline_ms"] < 2.5
    # Everyone meets real time at 10x10 (paper section IV-C).
    for row in result.rows:
        assert row["fpga_optimized_ms"] <= REAL_TIME_MS
