"""Ablation A4 — multi-PE partitioned tree search (section V future work).

Scales the number of processing entities and reports the parallel
latency bound (busiest-PE expansions). Related work [4] reaches 29x with
32 PEs using offline tree partitioning; our simple online round-robin
split shows the same qualitative behaviour — useful but sub-linear
speedup, limited by how early the shared radius tightens.
"""

from _helpers import run_and_report

from repro.bench.experiments import ablation_parallel_pes


def bench_parallel_pes(benchmark, capsys):
    result = run_and_report(
        benchmark,
        ablation_parallel_pes,
        capsys,
        snr_db=4.0,
        pe_counts=(1, 2, 4, 8, 16, 32),
        channels=3,
        frames_per_channel=3,
        seed=2023,
    )
    rows = {row["n_pes"]: row for row in result.rows}
    # Speedup is real but sub-linear.
    assert rows[1]["latency_speedup"] == 1.0
    assert rows[4]["latency_speedup"] > 1.2
    assert rows[32]["latency_speedup"] >= rows[4]["latency_speedup"] * 0.9
    assert rows[32]["latency_speedup"] < 32.0
    # Efficiency decays with PE count (the scaling challenge of [4]).
    assert rows[32]["efficiency_pct"] < rows[2]["efficiency_pct"]
    # Total work is not inflated by more than ~2x by parallel exploration.
    assert rows[32]["mean_total_nodes"] < 2.5 * rows[1]["mean_total_nodes"]
