"""Fig. 7 — BER vs SNR, 10x10 MIMO, 4-QAM.

Paper: the SD's BER is below 1e-2 at its 4 dB operating point (a
per-stream SNR axis: the ~10 dB receive array gain of M=10 is implicit).
On this repo's aggregate-receive-SNR axis the same sub-1e-2 regime is
reached around 10-12 dB; the curve is monotone and the exact SD
dominates the linear detectors at every point.
"""

from _helpers import run_and_report

from repro.bench.experiments import fig7_ber_10x10_4qam


def bench_fig7_series(benchmark, capsys):
    result = run_and_report(
        benchmark,
        fig7_ber_10x10_4qam,
        capsys,
        channels=6,
        frames_per_channel=20,
        seed=2023,
    )
    sd = result.column("sd_ber")
    zf = result.column("zf_ber")
    snrs = result.column("snr_db")
    # Monotone non-increasing BER (allowing MC noise at the floor).
    assert sd[0] >= sd[-1]
    # The paper's "below 1e-2" regime is reached inside the swept range
    # (at ~= 4 dB + array gain on our axis).
    assert min(sd) < 1e-2
    # Exact SD dominates ZF everywhere.
    for s, z in zip(sd, zf):
        assert s <= z + 1e-12
    assert snrs == [4.0, 8.0, 12.0, 16.0, 20.0]
