"""Table II — power / execution time / energy, CPU vs FPGA."""

from _helpers import run_and_report

from repro.bench.experiments import table2_power
from repro.fpga.power import energy_reduction_geomean


def bench_table2_power(benchmark, capsys):
    result = run_and_report(
        benchmark, table2_power, capsys, channels=2, frames_per_channel=2, seed=2023
    )
    assert len(result.rows) == 4
    reductions = [row["energy_reduction"] for row in result.rows]
    # The FPGA wins on energy by at least an order of magnitude everywhere
    # (paper geomean 38.1x; ours is larger because our measured FPGA/CPU
    # time ratio follows Fig. 6's 5x rather than Table II's 3.5x — the
    # paper's two numbers disagree; see EXPERIMENTS.md).
    geomean = energy_reduction_geomean(reductions)
    assert geomean > 10.0
    for row in result.rows:
        assert row["fpga_power_w"] < row["cpu_power_w"]
