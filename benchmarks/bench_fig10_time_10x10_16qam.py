"""Fig. 10 — execution time vs SNR, 10x10 MIMO, 16-QAM.

Paper: 16-QAM is dramatically more expensive than 4-QAM (CPU ~100 ms at
4 dB; real time only between 16 and 20 dB); the FPGA is ~4x faster. The
paper attributes the blow-up to the tree-state matrix growing with the
modulation factor squared (section IV-E).
"""

from _helpers import run_and_report

from repro.bench.experiments import fig6_time_10x10_4qam, fig10_time_10x10_16qam
from repro.bench.harness import REAL_TIME_MS


def bench_fig10_series(benchmark, capsys):
    result = run_and_report(
        benchmark,
        fig10_time_10x10_16qam,
        capsys,
        channels=2,
        frames_per_channel=2,
        seed=2023,
    )
    rows = {row["snr_db"]: row for row in result.rows}
    # CPU far beyond real time at the low end.
    assert rows[4.0]["cpu_ms"] > 3 * REAL_TIME_MS
    # FPGA speedup in the paper's ballpark (4x).
    assert rows[4.0]["speedup_vs_cpu"] > 3.0
    # Time falls with SNR.
    assert rows[20.0]["cpu_ms"] < rows[4.0]["cpu_ms"]


def bench_fig10_modulation_blowup(benchmark, capsys):
    """Section IV-E: modulation scaling hurts more than antenna scaling."""

    def both():
        qam4 = fig6_time_10x10_4qam(
            snrs=[8.0], channels=2, frames_per_channel=2, seed=2023
        )
        qam16 = fig10_time_10x10_16qam(
            snrs=[8.0], channels=2, frames_per_channel=2, seed=2023
        )
        return qam4, qam16

    qam4, qam16 = benchmark.pedantic(both, rounds=1, iterations=1)
    with capsys.disabled():
        ratio = qam16.rows[0]["cpu_ms"] / qam4.rows[0]["cpu_ms"]
        print(
            f"\n16-QAM / 4-QAM CPU decode-time ratio @ 8 dB: {ratio:.1f}x "
            "(paper: order-of-magnitude blow-up)\n"
        )
    assert qam16.rows[0]["cpu_ms"] > 3 * qam4.rows[0]["cpu_ms"]
