"""Fig. 9 — execution time vs SNR, 20x20 MIMO, 4-QAM.

Paper: both platforms are far beyond real time at 4 dB; at 8 dB the
CPU needs 88.8 ms while the optimised FPGA decodes in 9.9 ms (9x) —
the configuration only the accelerator can serve in real time.

Note: the 4 dB point is the heaviest workload in the whole harness; the
decoder's node cap may truncate some frames there (reported in the
table), which matches the paper's observation that this regime is
impractical on every platform.
"""

from _helpers import run_and_report

from repro.bench.experiments import fig9_time_20x20_4qam
from repro.bench.harness import REAL_TIME_MS


def bench_fig9_series(benchmark, capsys):
    result = run_and_report(
        benchmark,
        fig9_time_20x20_4qam,
        capsys,
        snrs=(4.0, 8.0, 12.0, 16.0, 20.0),
        channels=2,
        frames_per_channel=2,
        seed=2023,
    )
    rows = {row["snr_db"]: row for row in result.rows}
    # 4 dB is impractical on the CPU (paper: hundreds of ms).
    assert rows[4.0]["cpu_ms"] > 5 * REAL_TIME_MS
    # The FPGA advantage grows with system size (paper: 9x at 8 dB,
    # vs 5x for 10x10); our per-child memory model reproduces the growth.
    assert rows[8.0]["speedup_vs_cpu"] > 5.0
    # By the top of the sweep the FPGA is comfortably real-time.
    assert rows[20.0]["fpga_optimized_ms"] <= REAL_TIME_MS
    # Decode time monotone non-increasing with SNR.
    cpu = [rows[s]["cpu_ms"] for s in sorted(rows)]
    assert cpu[0] >= cpu[-1]
