"""Fig. 12 — decoding-time comparison: ZF, MMSE, Geosphere, this work.

Paper: Geosphere (on the WARP v3 radio) decodes in 11 ms at 20 dB; the
FPGA design is 11x faster while operating at far lower SNR. The linear
detectors are fast at every SNR but pay for it in BER.
"""

from _helpers import run_and_report

from repro.bench.experiments import fig12_detector_comparison


def bench_fig12_series(benchmark, capsys):
    result = run_and_report(
        benchmark,
        fig12_detector_comparison,
        capsys,
        channels=2,
        frames_per_channel=4,
        seed=2023,
    )
    rows = {row["snr_db"]: row for row in result.rows}
    top = rows[20.0]
    # Geosphere/WARP anchor: ~11 ms at 20 dB (within ~2x here).
    assert 5.0 < top["geosphere_warp_ms"] < 25.0
    # Paper: this work ~11x faster than Geosphere at Geosphere's SNR.
    assert top["geosphere_warp_ms"] / top["fpga_opt_ms"] > 5.0
    for row in result.rows:
        # Linear detectors: fastest, worst BER (the motivating trade-off).
        assert row["zf_ms"] < row["fpga_opt_ms"]
        assert row["sd_ber"] <= row["zf_ber"] + 1e-12
        assert row["sd_ber"] <= row["mmse_ber"] + 1e-12
